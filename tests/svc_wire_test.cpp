// Wire-protocol tests for the trial service (colorbars::svc): exact
// JSON numeric round-trips, frame codec hostile-input behaviour, full
// LinkConfig serialization across every knob, message envelopes, and a
// deterministic mutation-fuzz pass over the decoder + parser (the
// protocol-fuzz corpus pattern) — malformed input must yield errors,
// never UB.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "colorbars/svc/json.hpp"
#include "colorbars/svc/service.hpp"
#include "colorbars/svc/sweep.hpp"
#include "colorbars/svc/wire.hpp"
#include "colorbars/util/rng.hpp"

namespace colorbars::svc {
namespace {

// --- JSON model ---

TEST(SvcWire, JsonDoubleRoundTripIsBitExact) {
  for (const double value :
       {0.1, 1.0 / 3.0, 6.02214076e23, 5e-324, -0.0, 1e-300, 3.14159265358979,
        std::numeric_limits<double>::max(),
        std::numeric_limits<double>::denorm_min()}) {
    const std::string text = Json::number(value).dump();
    std::string error;
    const Json parsed = Json::parse(text, &error);
    ASSERT_TRUE(parsed.is_number()) << text << ": " << error;
    EXPECT_EQ(std::signbit(parsed.as_double()), std::signbit(value));
    EXPECT_EQ(parsed.as_double(), value) << text;
    // And re-serialization is byte-stable (token preserved).
    EXPECT_EQ(parsed.dump(), text);
  }
}

TEST(SvcWire, JsonUint64AboveDoublePrecisionRoundTrips) {
  const std::uint64_t seeds[] = {0xc01055eedULL, 0xffffffffffffffffULL,
                                 (1ULL << 53) + 1, 0x9e3779b97f4a7c15ULL};
  for (const std::uint64_t seed : seeds) {
    const std::string text = Json::unsigned_integer(seed).dump();
    const Json parsed = Json::parse(text);
    ASSERT_TRUE(parsed.is_number());
    EXPECT_EQ(parsed.as_uint64(), seed) << text;
    EXPECT_EQ(parsed.dump(), text);
  }
}

TEST(SvcWire, JsonStringEscapesRoundTrip) {
  Json object = Json::object();
  object.set("text", Json::string("line\nquote\"slash\\tab\tnul\x01"));
  object.set("unicode", Json::string("caf\xc3\xa9"));
  std::string error;
  const Json parsed = Json::parse(object.dump(), &error);
  ASSERT_TRUE(parsed.is_object()) << error;
  EXPECT_EQ(parsed["text"].as_string(), "line\nquote\"slash\\tab\tnul\x01");
  EXPECT_EQ(parsed["unicode"].as_string(), "caf\xc3\xa9");
}

TEST(SvcWire, JsonParserRejectsHostileInput) {
  std::string error;
  // Depth bomb: one past the cap must fail, the cap itself must pass.
  std::string deep;
  for (int i = 0; i <= Json::kMaxDepth; ++i) deep += "[";
  for (int i = 0; i <= Json::kMaxDepth; ++i) deep += "]";
  EXPECT_TRUE(Json::parse(deep, &error).is_null());
  EXPECT_FALSE(error.empty());

  std::string ok_depth;
  for (int i = 0; i < Json::kMaxDepth; ++i) ok_depth += "[";
  for (int i = 0; i < Json::kMaxDepth; ++i) ok_depth += "]";
  EXPECT_TRUE(Json::parse(ok_depth, &error).is_array());

  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "01", "1e", "\"unterminated", "tru",
        "nul", "[1] trailing", "{\"a\" 1}", "\"\\u12\"", "nan", "+1"}) {
    error.clear();
    EXPECT_TRUE(Json::parse(bad, &error).is_null()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

// --- frame codec ---

TEST(SvcWire, FrameCodecRoundTripsAcrossSplitFeeds) {
  const std::string a = encode_frame("first");
  const std::string b = encode_frame(std::string(1000, 'x'));
  const std::string stream = a + b;
  FrameDecoder decoder;
  // Byte-at-a-time delivery must produce exactly the two payloads.
  std::vector<std::string> payloads;
  for (const char byte : stream) {
    decoder.feed(&byte, 1);
    while (auto payload = decoder.next()) payloads.push_back(*payload);
  }
  ASSERT_EQ(payloads.size(), 2u);
  EXPECT_EQ(payloads[0], "first");
  EXPECT_EQ(payloads[1], std::string(1000, 'x'));
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(SvcWire, FrameDecoderPoisonsOnOversizedPrefix) {
  FrameDecoder decoder;
  const char oversized[4] = {0x7f, 0x00, 0x00, 0x00};  // ~2 GiB claim
  decoder.feed(oversized, 4);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.poisoned());
  EXPECT_NE(decoder.error().find("kMaxFramePayload"), std::string::npos);
  // Poisoned decoders stay poisoned: later feeds are ignored.
  const std::string good = encode_frame("x");
  decoder.feed(good.data(), good.size());
  EXPECT_FALSE(decoder.next().has_value());
}

TEST(SvcWire, FrameDecoderPoisonsOnZeroLengthPrefix) {
  FrameDecoder decoder;
  const char zero[4] = {0, 0, 0, 0};
  decoder.feed(zero, 4);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.poisoned());
}

TEST(SvcWire, TruncatedFrameNeverCompletes) {
  const std::string frame = encode_frame("hello world");
  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size() - 1);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.poisoned());
  EXPECT_EQ(decoder.buffered_bytes(), frame.size() - 1);
}

// --- LinkConfig serialization, every knob off its default ---

core::LinkConfig exercised_config() {
  core::LinkConfig config;
  config.order = csk::CskOrder::kCsk64;
  config.symbol_rate_hz = 3333.0;
  config.illumination_ratio = 0.65;
  config.profile = camera::iphone5s_profile();
  config.profile.rows = 720;
  config.profile.xyz_to_sensor_rgb(1, 2) = -0.125;
  config.profile.frame_start_jitter_s = 0.0009;
  config.channel.distance.distance_m = 0.5;
  config.channel.distance.reference_distance_m = 0.04;
  config.channel.ambient.level = 0.02;
  config.channel.ambient.chromaticity = {0.3, 0.32};
  config.channel.flicker.frequency_hz = 120.0;
  config.channel.flicker.modulation_depth = 0.2;
  config.channel.flicker.phase_rad = 0.7;
  config.channel.occlusion.rate_hz = 0.5;
  config.channel.occlusion.mean_duration_s = 0.02;
  config.channel.occlusion.transmission = 0.1;
  config.channel.isi.delay_spread_s = 0.0004;
  config.channel.isi.taps = 6;
  config.channel.isi.tap_spacing_s = 0.0002;
  config.channel.frame.drop_probability = 0.01;
  config.channel.frame.gain_wobble_sigma = 0.05;
  config.frontend = frontend::FrontendKind::kPhotodiode;
  config.pd.sample_rate_hz = 150000.0;
  config.pd.adc_bits = 10;
  config.pd.channels[0].responsivity = 1.25;
  config.pd.channels[1].filter_xyz = {0.25, 0.5, 0.25};
  config.pd.min_transitions = 48;
  config.led.peak_radiance = 0.8;
  config.led.max_symbol_rate_hz = 4200.0;
  config.led.gamut = color::GamutTriangle({0.68, 0.31}, {0.25, 0.70}, {0.14, 0.05});
  config.calibration_rate_hz = 7.5;
  config.classifier.off_lightness = 33.0;
  config.classifier.off_max_chroma = 21.0;
  config.classifier.confident_delta_e = 4.5;
  config.classifier.matching_space = rx::MatchingSpace::kCielab94;
  config.engine.kind = eq::EngineKind::kLinearMmse;
  config.engine.channel_taps = 4;
  config.engine.equalizer_taps = 10;
  config.engine.mmse_lambda = 2e-3;
  config.engine.dft_size = 64;
  config.engine.max_tap_norm = 16.0;
  config.engine.reference_prior = 0.3;
  config.engine.train_iterations = 2;
  config.enable_dephasing_pad = false;
  config.use_erasure_decoding = false;
  config.pipeline_lookahead = 3;
  config.seed = 0xdeadbeefcafef00dULL;
  return config;
}

TEST(SvcWire, LinkConfigRoundTripsEveryKnob) {
  const core::LinkConfig config = exercised_config();
  const Json encoded = link_config_to_json(config);
  std::string error;
  const auto decoded = link_config_from_json(encoded, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  // encode(parse(encode(x))) == encode(x): with exact numeric tokens
  // this single check covers every field bit for bit.
  EXPECT_EQ(link_config_to_json(*decoded).dump(), encoded.dump());
  // Spot-check representative fields of each subsystem anyway, so a
  // symmetrical serializer bug (same field dropped on both sides)
  // cannot hide behind the dump comparison.
  EXPECT_EQ(decoded->order, csk::CskOrder::kCsk64);
  EXPECT_EQ(decoded->frontend, frontend::FrontendKind::kPhotodiode);
  EXPECT_EQ(decoded->profile.rows, 720);
  EXPECT_EQ(decoded->profile.xyz_to_sensor_rgb(1, 2), -0.125);
  EXPECT_EQ(decoded->channel.isi.taps, 6);
  EXPECT_EQ(decoded->channel.flicker.frequency_hz, 120.0);
  EXPECT_EQ(decoded->pd.channels[1].filter_xyz.y, 0.5);
  EXPECT_EQ(decoded->led.gamut.green().y, 0.70);
  EXPECT_EQ(decoded->classifier.matching_space, rx::MatchingSpace::kCielab94);
  EXPECT_EQ(decoded->engine.kind, eq::EngineKind::kLinearMmse);
  EXPECT_FALSE(decoded->enable_dephasing_pad);
  EXPECT_FALSE(decoded->use_erasure_decoding);
  EXPECT_EQ(decoded->pipeline_lookahead, 3);
  EXPECT_EQ(decoded->seed, 0xdeadbeefcafef00dULL);
}

TEST(SvcWire, LinkConfigParseRejectsBadInput) {
  const Json good = link_config_to_json(core::LinkConfig{});
  std::string error;

  // Missing field.
  {
    Json broken = Json::parse(good.dump());
    Json replacement = Json::object();
    for (const auto& [key, value] : broken.members()) {
      if (key != "seed") replacement.set(key, value);
    }
    EXPECT_FALSE(link_config_from_json(replacement, &error).has_value());
    EXPECT_NE(error.find("seed"), std::string::npos);
  }
  // Unknown enum labels.
  {
    Json broken = Json::parse(good.dump());
    broken.set("frontend", Json::string("telescope"));
    EXPECT_FALSE(link_config_from_json(broken, &error).has_value());
  }
  {
    Json broken = Json::parse(good.dump());
    broken.set("order", Json::integer(7));
    EXPECT_FALSE(link_config_from_json(broken, &error).has_value());
  }
  // Out-of-range value the subsystem validators reject.
  {
    Json broken = Json::parse(good.dump());
    Json channel = broken["channel"];
    Json distance = channel["distance"];
    distance.set("distance_m", Json::number(-1.0));
    channel.set("distance", std::move(distance));
    broken.set("channel", std::move(channel));
    error.clear();
    EXPECT_FALSE(link_config_from_json(broken, &error).has_value());
    EXPECT_NE(error.find("validation"), std::string::npos);
  }
  // Not an object at all.
  EXPECT_FALSE(link_config_from_json(Json::integer(3), &error).has_value());
}

// --- message envelopes ---

TEST(SvcWire, JobMessageRoundTrips) {
  JobRequest job;
  job.id = 42;
  job.kind = TrialKind::kThroughput;
  job.point = 7;
  job.trial_begin = 3;
  job.trial_end = 6;
  job.duration_s = 1.75;
  job.config = exercised_config();
  const std::string payload = encode_job(job);
  std::string error;
  const auto message = parse_message(payload, &error);
  ASSERT_TRUE(message.has_value()) << error;
  ASSERT_EQ(message->type, "job");
  EXPECT_EQ(message->job.id, 42);
  EXPECT_EQ(message->job.kind, TrialKind::kThroughput);
  EXPECT_EQ(message->job.point, 7);
  EXPECT_EQ(message->job.trial_begin, 3);
  EXPECT_EQ(message->job.trial_end, 6);
  EXPECT_EQ(message->job.duration_s, 1.75);
  EXPECT_FALSE(message->job.is_adaptive);
  EXPECT_EQ(link_config_to_json(message->job.config).dump(),
            link_config_to_json(job.config).dump());
  // Round-trip stability at the message level.
  EXPECT_EQ(encode_job(message->job), payload);
}

TEST(SvcWire, AdaptiveJobMessageRoundTrips) {
  JobRequest job;
  job.id = 9;
  job.point = 9;
  job.is_adaptive = true;
  job.adaptive.ladder = adapt::default_ladder(eq::EngineKind::kFrequencyDomain);
  job.adaptive.initial_rung = 2;
  job.adaptive.control_interval_s = 0.3;
  job.adaptive.recalibration_cost_s = 0.25;
  job.adaptive.controller.switch_cost_intervals = 1.5;
  job.adaptive.feedback.delay_intervals = 2;
  job.adaptive.feedback.loss_probability = 0.1;
  job.adaptive.monitor.alpha = 0.4;
  job.adaptive.seed = (1ULL << 60) + 12345;
  job.trajectory = adapt::walkaway_trajectory();
  const std::string payload = encode_job(job);
  std::string error;
  const auto message = parse_message(payload, &error);
  ASSERT_TRUE(message.has_value()) << error;
  ASSERT_TRUE(message->job.is_adaptive);
  EXPECT_EQ(message->job.adaptive.ladder.size(), job.adaptive.ladder.size());
  EXPECT_EQ(message->job.adaptive.recalibration_cost_s, 0.25);
  EXPECT_EQ(message->job.adaptive.controller.switch_cost_intervals, 1.5);
  EXPECT_EQ(message->job.adaptive.seed, job.adaptive.seed);
  EXPECT_EQ(message->job.trajectory.segments.size(),
            job.trajectory.segments.size());
  EXPECT_EQ(encode_job(message->job), payload);
}

TEST(SvcWire, ResultHelloHeartbeatShutdownRoundTrip) {
  JobResultMessage result;
  result.id = 5;
  result.worker = 1;
  result.trials_kind = TrialKind::kSer;
  TrialResult trial;
  trial.ser.symbols_sent = 1000;
  trial.ser.symbols_observed = 900;
  trial.ser.symbol_errors = 17;
  trial.ser.inter_frame_loss_ratio = 0.1;
  trial.ser.engine_decisions = 900;
  trial.ser.engine_tap_norm = 1.5;
  result.trials.push_back(trial);
  std::string error;
  const auto parsed = parse_message(encode_job_result(result), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->type, "result");
  ASSERT_EQ(parsed->result.trials.size(), 1u);
  EXPECT_EQ(parsed->result.trials[0].ser.symbol_errors, 17);
  EXPECT_EQ(parsed->result.trials[0].ser.engine_tap_norm, 1.5);

  const auto hello = parse_message(encode_hello({3, 2, 12345}), &error);
  ASSERT_TRUE(hello.has_value()) << error;
  EXPECT_EQ(hello->type, "hello");
  EXPECT_EQ(hello->hello.worker, 3);
  EXPECT_EQ(hello->hello.generation, 2);
  EXPECT_EQ(hello->hello.pid, 12345);

  const auto beat = parse_message(encode_heartbeat({1, 77}), &error);
  ASSERT_TRUE(beat.has_value()) << error;
  EXPECT_EQ(beat->type, "heartbeat");
  EXPECT_EQ(beat->heartbeat.job_id, 77);

  const auto shutdown = parse_message(encode_shutdown(), &error);
  ASSERT_TRUE(shutdown.has_value()) << error;
  EXPECT_EQ(shutdown->type, "shutdown");
}

TEST(SvcWire, ParseMessageRejectsMalformedEnvelopes) {
  std::string error;
  EXPECT_FALSE(parse_message("not json", &error).has_value());
  EXPECT_FALSE(parse_message("[]", &error).has_value());
  EXPECT_FALSE(parse_message("{\"type\":\"martian\"}", &error).has_value());
  EXPECT_FALSE(parse_message("{\"type\":\"job\",\"id\":1}", &error).has_value());
  EXPECT_FALSE(
      parse_message("{\"type\":\"result\",\"id\":1,\"worker\":0,\"kind\":\"ser\"}",
                    &error)
          .has_value());
}

// --- mutation fuzz: hostile bytes through decoder + parser, no UB ---

TEST(SvcWire, MutationFuzzNeverCrashes) {
  // Corpus: real frames of every message type.
  JobRequest job;
  job.id = 1;
  job.trial_end = 2;
  job.symbols_per_trial = 100;
  const std::string corpus[] = {
      encode_frame(encode_hello({0, 0, 1})),
      encode_frame(encode_heartbeat({0, -1})),
      encode_frame(encode_job(job)),
      encode_frame(encode_shutdown()),
  };
  util::Xoshiro256 rng(0xf022);
  for (int round = 0; round < 400; ++round) {
    std::string bytes = corpus[rng.below(4)];
    // Mutate: flip bytes, truncate, duplicate, or splice garbage.
    const int mutations = 1 + static_cast<int>(rng.below(8));
    for (int m = 0; m < mutations; ++m) {
      if (bytes.empty()) break;
      switch (rng.below(4)) {
        case 0:
          bytes[rng.below(bytes.size())] =
              static_cast<char>(rng.below(256));
          break;
        case 1:
          bytes.resize(rng.below(bytes.size()) + 1);
          break;
        case 2:
          bytes += bytes.substr(0, rng.below(bytes.size()) + 1);
          break;
        default:
          bytes.insert(rng.below(bytes.size()),
                       std::string(1 + rng.below(16), static_cast<char>(rng.below(256))));
          break;
      }
    }
    FrameDecoder decoder;
    decoder.feed(bytes.data(), bytes.size());
    // Drain everything the decoder yields through the parser. Any
    // outcome is acceptable except a crash or sanitizer report.
    while (auto payload = decoder.next()) {
      std::string error;
      (void)parse_message(*payload, &error);
    }
  }
}

// --- sweep decomposition sanity ---

TEST(SvcWire, MakeJobsShardsTrialsExactly) {
  SweepSpec spec;
  SweepPoint point;
  point.trials = 5;
  spec.points.assign(2, point);
  spec.trials_per_job = 2;
  const std::vector<JobRequest> jobs = make_jobs(spec);
  ASSERT_EQ(jobs.size(), 6u);  // per point: [0,2) [2,4) [4,5)
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, static_cast<long long>(i));
  }
  EXPECT_EQ(jobs[2].trial_begin, 4);
  EXPECT_EQ(jobs[2].trial_end, 5);
  EXPECT_EQ(jobs[3].point, 1);
  EXPECT_EQ(jobs[3].trial_begin, 0);
  // Whole-point jobs when no grain is set.
  spec.trials_per_job = 0;
  const std::vector<JobRequest> whole = make_jobs(spec);
  ASSERT_EQ(whole.size(), 2u);
  EXPECT_EQ(whole[0].trial_end, 5);
}

}  // namespace
}  // namespace colorbars::svc
