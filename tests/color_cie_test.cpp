#include "colorbars/color/cie.hpp"

#include <gtest/gtest.h>

#include "colorbars/util/rng.hpp"

namespace colorbars::color {
namespace {

TEST(Cie, XyyToXyzAndBackRoundTrips) {
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 100; ++i) {
    const Chromaticity c{rng.uniform(0.05, 0.7), rng.uniform(0.05, 0.7)};
    const double Y = rng.uniform(0.01, 1.0);
    const xyY back = xyz_to_xyy(xyy_to_xyz(c, Y));
    EXPECT_NEAR(back.xy.x, c.x, 1e-12);
    EXPECT_NEAR(back.xy.y, c.y, 1e-12);
    EXPECT_NEAR(back.Y, Y, 1e-12);
  }
}

TEST(Cie, BlackMapsToWhitePointWithZeroLuminance) {
  const xyY black = xyz_to_xyy({0, 0, 0});
  EXPECT_EQ(black.xy, kD65);
  EXPECT_DOUBLE_EQ(black.Y, 0.0);
}

TEST(Cie, D65WhiteHasUnitLuminance) {
  const XYZ white = d65_white_xyz();
  EXPECT_DOUBLE_EQ(white.y, 1.0);
  const xyY as_xyy = xyz_to_xyy(white);
  EXPECT_NEAR(as_xyy.xy.x, kD65.x, 1e-12);
  EXPECT_NEAR(as_xyy.xy.y, kD65.y, 1e-12);
}

TEST(Cie, XyDistanceIsEuclidean) {
  EXPECT_DOUBLE_EQ(xy_distance({0.0, 0.0}, {0.3, 0.4}), 0.5);
  EXPECT_DOUBLE_EQ(xy_distance({0.2, 0.2}, {0.2, 0.2}), 0.0);
}

TEST(Cie, PrimariesMatrixMapsWhiteToWhite) {
  const Chromaticity red{0.64, 0.33};
  const Chromaticity green{0.30, 0.60};
  const Chromaticity blue{0.15, 0.06};
  const util::Mat3 m = rgb_to_xyz_matrix(red, green, blue, kD65);
  const XYZ white = m * util::Vec3{1, 1, 1};
  const XYZ expected = d65_white_xyz();
  EXPECT_NEAR(white.x, expected.x, 1e-9);
  EXPECT_NEAR(white.y, expected.y, 1e-9);
  EXPECT_NEAR(white.z, expected.z, 1e-9);
}

TEST(Cie, PrimariesMatrixMapsUnitChannelsToPrimaries) {
  const Chromaticity red{0.64, 0.33};
  const Chromaticity green{0.30, 0.60};
  const Chromaticity blue{0.15, 0.06};
  const util::Mat3 m = rgb_to_xyz_matrix(red, green, blue, kD65);
  const xyY r = xyz_to_xyy(m * util::Vec3{1, 0, 0});
  EXPECT_NEAR(r.xy.x, red.x, 1e-9);
  EXPECT_NEAR(r.xy.y, red.y, 1e-9);
  const xyY g = xyz_to_xyy(m * util::Vec3{0, 1, 0});
  EXPECT_NEAR(g.xy.x, green.x, 1e-9);
  const xyY b = xyz_to_xyy(m * util::Vec3{0, 0, 1});
  EXPECT_NEAR(b.xy.y, blue.y, 1e-9);
}

TEST(Cie, EqualEnergyWhiteIsTriangleCentroidOfUnitVectors) {
  EXPECT_NEAR(kWhiteE.x, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(kWhiteE.y, 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace colorbars::color
