#include "colorbars/adapt/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "colorbars/camera/camera.hpp"
#include "colorbars/core/link.hpp"
#include "colorbars/tx/transmitter.hpp"
#include "colorbars/util/rng.hpp"

namespace colorbars::adapt {
namespace {

LinkQualitySample good_sample() {
  LinkQualitySample sample;
  sample.packets_sent = 10;
  sample.packets_decided = 10;
  sample.packets_ok = 10;
  sample.margin_sum = 50.0;
  sample.margin_count = 10;
  sample.frames_streamed = 20;
  return sample;
}

LinkQualitySample dead_sample() {
  LinkQualitySample sample;
  sample.packets_sent = 10;  // sent but nothing decided: success() == 0
  sample.frames_streamed = 20;
  return sample;
}

// ---------------------------------------------------------------- monitor

TEST(Adapt, SampleSuccessSemantics) {
  EXPECT_DOUBLE_EQ(good_sample().success(), 1.0);
  // Sent-but-undecided is a dead link, not missing evidence.
  EXPECT_DOUBLE_EQ(dead_sample().success(), 0.0);
  // An idle interval reads as healthy.
  EXPECT_DOUBLE_EQ(LinkQualitySample{}.success(), 1.0);
}

TEST(Adapt, MonitorRejectsBadAlpha) {
  EXPECT_THROW(LinkMonitor({.alpha = 0.0}), std::invalid_argument);
  EXPECT_THROW(LinkMonitor({.alpha = 1.5}), std::invalid_argument);
  EXPECT_NO_THROW(LinkMonitor({.alpha = 1.0}));
}

TEST(Adapt, MonitorFirstSampleInitializesOutright) {
  LinkMonitor monitor({.alpha = 0.5});
  EXPECT_FALSE(monitor.quality().valid());
  monitor.observe(dead_sample());
  // Not blended against the optimistic default of 1.0: a dead first
  // interval must read as dead immediately.
  EXPECT_DOUBLE_EQ(monitor.quality().packet_success, 0.0);
  EXPECT_TRUE(monitor.quality().valid());
}

TEST(Adapt, MonitorBlendsWithEwma) {
  LinkMonitor monitor({.alpha = 0.5});
  monitor.observe(good_sample());
  EXPECT_DOUBLE_EQ(monitor.quality().packet_success, 1.0);
  EXPECT_TRUE(monitor.quality().margin_valid);
  EXPECT_DOUBLE_EQ(monitor.quality().margin, 5.0);
  monitor.observe(dead_sample());
  EXPECT_DOUBLE_EQ(monitor.quality().packet_success, 0.5);
  // The dead interval classified no payload slots, so the margin
  // estimate must hold rather than decay toward zero.
  EXPECT_DOUBLE_EQ(monitor.quality().margin, 5.0);
  EXPECT_EQ(monitor.quality().samples, 2);
}

TEST(Adapt, MonitorResetClearsEstimate) {
  LinkMonitor monitor;
  monitor.observe(good_sample());
  monitor.reset();
  EXPECT_FALSE(monitor.quality().valid());
  EXPECT_FALSE(monitor.quality().margin_valid);
  EXPECT_FALSE(monitor.quality().header_loss_valid);
  EXPECT_FALSE(monitor.quality().frame_drop_valid);
  EXPECT_FALSE(monitor.quality().corrected_valid);
}

TEST(Adapt, MonitorRatioSignalsSkipEmptyDenominators) {
  LinkMonitor monitor({.alpha = 0.5});
  // Establish lossy estimates: half the sent packets lose their header,
  // half the frames drop, and each decided packet needed 4 corrections.
  LinkQualitySample lossy;
  lossy.packets_sent = 10;
  lossy.packets_decided = 5;
  lossy.packets_ok = 5;
  lossy.header_losses = 5;
  lossy.corrected_symbols = 20;
  lossy.frames_streamed = 10;
  lossy.frames_dropped = 10;
  monitor.observe(lossy);
  EXPECT_TRUE(monitor.quality().header_loss_valid);
  EXPECT_TRUE(monitor.quality().frame_drop_valid);
  EXPECT_TRUE(monitor.quality().corrected_valid);
  EXPECT_DOUBLE_EQ(monitor.quality().header_loss, 0.5);
  EXPECT_DOUBLE_EQ(monitor.quality().frame_drop, 0.5);
  EXPECT_DOUBLE_EQ(monitor.quality().corrected_per_packet, 4.0);

  // A completely idle interval (nothing sent, no frames, no decisions)
  // carries no evidence about any ratio: every estimate must hold
  // instead of decaying toward the 0.0 placeholder.
  monitor.observe(LinkQualitySample{});
  EXPECT_DOUBLE_EQ(monitor.quality().header_loss, 0.5);
  EXPECT_DOUBLE_EQ(monitor.quality().frame_drop, 0.5);
  EXPECT_DOUBLE_EQ(monitor.quality().corrected_per_packet, 4.0);
  EXPECT_EQ(monitor.quality().samples, 2);

  // A dead interval (sent but nothing decided) IS evidence about header
  // loss (denominator packets_sent) but not about corrections
  // (denominator packets_decided).
  LinkQualitySample dead = dead_sample();
  dead.header_losses = 10;
  monitor.observe(dead);
  EXPECT_DOUBLE_EQ(monitor.quality().header_loss, 0.75);  // 0.5 + 0.5*(1.0-0.5)
  EXPECT_DOUBLE_EQ(monitor.quality().corrected_per_packet, 4.0);
}

TEST(Adapt, MonitorRatioSignalsInitializeOnFirstEvidence) {
  LinkMonitor monitor({.alpha = 0.5});
  // Several idle intervals first: the ratio estimates stay invalid and
  // must not be dragged toward zero before any evidence arrives.
  monitor.observe(LinkQualitySample{});
  monitor.observe(LinkQualitySample{});
  EXPECT_FALSE(monitor.quality().header_loss_valid);
  EXPECT_FALSE(monitor.quality().frame_drop_valid);
  EXPECT_FALSE(monitor.quality().corrected_valid);

  LinkQualitySample lossy;
  lossy.packets_sent = 4;
  lossy.header_losses = 4;
  lossy.packets_decided = 2;
  lossy.packets_ok = 0;
  lossy.corrected_symbols = 6;
  lossy.frames_streamed = 3;
  lossy.frames_dropped = 1;
  monitor.observe(lossy);
  // First evidence initializes outright — not blended against the
  // defaults the idle intervals left behind.
  EXPECT_DOUBLE_EQ(monitor.quality().header_loss, 1.0);
  EXPECT_DOUBLE_EQ(monitor.quality().frame_drop, 0.25);
  EXPECT_DOUBLE_EQ(monitor.quality().corrected_per_packet, 3.0);
}

// -------------------------------------------------------------- controller

TEST(Adapt, LadderValidation) {
  EXPECT_THROW(validate_ladder({}, 4500.0), std::invalid_argument);
  // Above the LED switching limit.
  EXPECT_THROW(validate_ladder({{csk::CskOrder::kCsk8, 5000.0}}, 4500.0),
               std::invalid_argument);
  // Not strictly ascending in raw bitrate (CSK16@1k == CSK8@2k == 4 kbps... no:
  // 4*1000 vs 3*2000; use an actual tie: CSK4@3k == CSK8@2k == 6 kbps).
  EXPECT_THROW(validate_ladder({{csk::CskOrder::kCsk4, 3000.0},
                                {csk::CskOrder::kCsk8, 2000.0}},
                               4500.0),
               std::invalid_argument);
  EXPECT_NO_THROW(validate_ladder(default_ladder(), 4500.0));
}

TEST(Adapt, DefaultLadderAscendsInRawBitrate) {
  const std::vector<Rung> ladder = default_ladder();
  ASSERT_GE(ladder.size(), 2u);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i].raw_bitrate_bps(), ladder[i - 1].raw_bitrate_bps());
  }
  EXPECT_EQ(rung_name(ladder.front()), "CSK8@1000Hz");
}

TEST(Adapt, EngineGatedLadderExtendsWithSupportedRungs) {
  // The extension rungs are gated on what the decision engine can
  // decode: every engine gets CSK32@4kHz above the paper's peak, but
  // CSK64@4kHz appears only for the equalized engines — offering it to
  // the plain scan would hand the controller a rung it can only fail on.
  const std::vector<Rung> base = default_ladder();
  const std::vector<Rung> nearest = default_ladder(eq::EngineKind::kNearestReference);
  ASSERT_EQ(nearest.size(), base.size() + 1);
  EXPECT_EQ(nearest.back(), (Rung{csk::CskOrder::kCsk32, 4000.0}));
  for (const eq::EngineKind kind :
       {eq::EngineKind::kLinearMmse, eq::EngineKind::kFrequencyDomain}) {
    const std::vector<Rung> equalized = default_ladder(kind);
    ASSERT_EQ(equalized.size(), base.size() + 2);
    EXPECT_EQ(equalized[equalized.size() - 2], (Rung{csk::CskOrder::kCsk32, 4000.0}));
    EXPECT_EQ(equalized.back(), (Rung{csk::CskOrder::kCsk64, 4000.0}));
    EXPECT_NO_THROW(validate_ladder(equalized, 4500.0));
  }
}

TEST(Adapt, DominatedRungIsNeverProbedTwiceInARow) {
  // The equalized ladder tops out at CSK64@4kHz. Under a channel where
  // that rung is dominated (higher order, but ISI collapses its
  // goodput), every probe into it fails — and the AIMD backoff must
  // keep the controller from bouncing straight back: after a failed
  // probe the confirmation requirement doubles, so the dominated rung
  // is never probed on two consecutive intervals.
  ControllerConfig config;
  config.up_confirm_intervals = 2;
  const std::vector<Rung> ladder = default_ladder(eq::EngineKind::kLinearMmse);
  const int top = static_cast<int>(ladder.size()) - 1;
  ASSERT_EQ(ladder[top].order, csk::CskOrder::kCsk64);
  RateController controller(ladder, config, top - 1);

  LinkQuality good;
  good.samples = 1;
  good.packet_success = 1.0;
  good.margin_valid = true;
  good.margin = 10.0;
  LinkQuality collapse;
  collapse.samples = 1;
  collapse.packet_success = 0.0;

  // Climb into the dominated rung.
  EXPECT_EQ(controller.decide(good), top - 1);  // streak 1 of 2
  EXPECT_EQ(controller.decide(good), top);      // probe up
  // The probe collapses; the requirement doubles.
  EXPECT_LT(controller.decide(collapse), top);
  EXPECT_EQ(controller.required_streak(), 2 * config.up_confirm_intervals);
  // Never twice in a row: the immediately following good interval must
  // not land back on the dominated rung, nor any interval until the
  // doubled streak has been re-earned below it.
  for (int i = 0; i < controller.required_streak(); ++i) {
    EXPECT_LT(controller.decide(good), top)
        << "re-probed the dominated rung after only " << i << " good intervals";
  }
}

TEST(Adapt, ControllerRejectsBadConstruction) {
  EXPECT_THROW(RateController(default_ladder(), {}, -1), std::invalid_argument);
  EXPECT_THROW(RateController(default_ladder(), {}, 99), std::invalid_argument);
  ControllerConfig config;
  config.up_confirm_intervals = 4;
  config.max_up_confirm_intervals = 2;
  EXPECT_THROW(RateController(default_ladder(), config, 0), std::invalid_argument);
}

TEST(Adapt, InvalidQualityLeavesDecisionUnchanged) {
  RateController controller(default_ladder(), {}, 2);
  EXPECT_EQ(controller.decide(LinkQuality{}), 2);
}

TEST(Adapt, CollapseDropsTwoRungsPartialDropsOne) {
  RateController controller(default_ladder(), {}, 3);
  LinkQuality quality;
  quality.samples = 1;
  quality.packet_success = 0.0;  // collapse
  EXPECT_EQ(controller.decide(quality), 1);
  quality.packet_success = 0.6;  // degraded but alive
  EXPECT_EQ(controller.decide(quality), 0);
  // Clamped at the bottom rung.
  quality.packet_success = 0.0;
  EXPECT_EQ(controller.decide(quality), 0);
}

TEST(Adapt, UpshiftNeedsConfirmationStreakAndMargin) {
  ControllerConfig config;
  config.up_confirm_intervals = 2;
  RateController controller(default_ladder(), config, 0);
  LinkQuality quality;
  quality.samples = 1;
  quality.packet_success = 1.0;
  quality.margin_valid = true;
  quality.margin = 10.0;
  EXPECT_EQ(controller.decide(quality), 0);  // streak 1 of 2
  EXPECT_EQ(controller.decide(quality), 1);  // confirmed: probe up

  // A thin margin gates the streak even at perfect success.
  RateController gated(default_ladder(), config, 0);
  quality.margin = 0.5;
  EXPECT_EQ(gated.decide(quality), 0);
  EXPECT_EQ(gated.decide(quality), 0);
  EXPECT_EQ(gated.decide(quality), 0);
}

TEST(Adapt, AimdFailedProbeDoublesRequirementSettledHalves) {
  ControllerConfig config;
  config.up_confirm_intervals = 2;
  config.probe_settle_intervals = 2;
  RateController controller(default_ladder(), config, 0);
  LinkQuality good;
  good.samples = 1;
  good.packet_success = 1.0;
  good.margin_valid = true;
  good.margin = 10.0;
  LinkQuality collapse = good;
  collapse.packet_success = 0.0;
  collapse.margin_valid = false;

  EXPECT_EQ(controller.decide(good), 0);
  EXPECT_EQ(controller.decide(good), 1);  // probe up
  EXPECT_EQ(controller.decide(collapse), 0);  // probe failed, collapse drop clamps
  EXPECT_EQ(controller.required_streak(), 4);  // doubled

  // Now the link must stay good 4 intervals before the next probe...
  EXPECT_EQ(controller.decide(good), 0);
  EXPECT_EQ(controller.decide(good), 0);
  EXPECT_EQ(controller.decide(good), 0);
  EXPECT_EQ(controller.decide(good), 1);  // probe again
  // ...and a probe that settles re-arms the requirement back down.
  EXPECT_EQ(controller.decide(good), 1);
  EXPECT_EQ(controller.decide(good), 1);
  EXPECT_EQ(controller.required_streak(), 2);
}

TEST(Adapt, OnAppliedKeepsDesiredWhenUplinkLags) {
  RateController controller(default_ladder(), {}, 3);
  LinkQuality collapse;
  collapse.samples = 1;
  collapse.packet_success = 0.0;
  EXPECT_EQ(controller.decide(collapse), 1);
  // The transmitter only got partway down (stale command applied):
  // desired must stay at the lower rung so the re-send loop pushes on.
  controller.on_applied(2);
  EXPECT_EQ(controller.desired_rung(), 1);
  // Matching application syncs.
  controller.on_applied(1);
  EXPECT_EQ(controller.desired_rung(), 1);
}

TEST(Adapt, SwitchCostGatesOrdinaryDownshiftsButNotCollapse) {
  LinkQuality bad;  // degraded but alive: between collapse and down thresholds
  bad.samples = 1;
  bad.packet_success = 0.6;
  LinkQuality middling = bad;  // healthy, but below the upshift bar
  middling.packet_success = 0.9;
  LinkQuality collapse = bad;
  collapse.packet_success = 0.0;

  // Free switching: the original policy, downshift on the first bad
  // interval.
  RateController free_switch(default_ladder(), {}, 3);
  EXPECT_EQ(free_switch.decide(bad), 2);

  // A 1.5-interval recalibration cost: only degradation persisting past
  // the cost is worth paying for, so the downshift needs 3 consecutive
  // sub-threshold intervals (1 + ceil(1.5)).
  ControllerConfig costly_config;
  costly_config.switch_cost_intervals = 1.5;
  RateController costly(default_ladder(), costly_config, 3);
  EXPECT_EQ(costly.decide(bad), 3);  // streak 1 of 3 — ride it out
  EXPECT_EQ(costly.decide(bad), 3);  // streak 2 of 3
  EXPECT_EQ(costly.decide(bad), 2);  // persistent: pay for the switch

  // Recovery resets the persistence gate: a dip that clears must not
  // leave a primed streak behind.
  RateController recovered(default_ladder(), costly_config, 3);
  EXPECT_EQ(recovered.decide(bad), 3);
  EXPECT_EQ(recovered.decide(bad), 3);
  EXPECT_EQ(recovered.decide(middling), 3);  // dip over — streak cleared
  EXPECT_EQ(recovered.decide(bad), 3);       // streak restarts at 1
  EXPECT_EQ(recovered.decide(bad), 3);
  EXPECT_EQ(recovered.decide(bad), 2);

  // Collapse bypasses the gate: a dead link loses more per interval
  // than any recalibration costs.
  RateController collapsed(default_ladder(), costly_config, 3);
  EXPECT_EQ(collapsed.decide(collapse), 1);

  ControllerConfig invalid;
  invalid.switch_cost_intervals = -0.5;
  EXPECT_THROW(RateController(default_ladder(), invalid, 0), std::invalid_argument);
}

TEST(Adapt, RecalibrationCostChargesDeadAirPerSwitch) {
  // One steady far leg from the top rung: the closed loop downshifts,
  // and because the channel is a single segment and every stochastic
  // stream derives from the interval counter, the free and costly runs
  // make identical per-interval decisions — the only difference is the
  // dead air charged at each switch. The costly run's post-switch
  // intervals start exactly recalibration_cost_s later, and fewer
  // intervals (so fewer payload bytes) fit into the trajectory.
  Trajectory trajectory;
  TrajectorySegment leg;
  leg.name = "far";
  leg.duration_s = 1.6;
  leg.channel.distance.distance_m = 0.13;
  leg.channel.distance.reference_distance_m = 0.08;
  trajectory.segments = {leg};

  AdaptiveLinkConfig config;
  config.profile = camera::ideal_profile();
  config.feedback.delay_intervals = 0;
  AdaptiveLinkSimulator free_sim(config, trajectory);
  const AdaptiveRunResult free_run = free_sim.run();

  config.recalibration_cost_s = 0.5;
  AdaptiveLinkSimulator costly_sim(config, trajectory);
  const AdaptiveRunResult costly_run = costly_sim.run();

  ASSERT_GT(free_run.downshifts, 0);
  ASSERT_GT(costly_run.downshifts, 0);
  EXPECT_LE(costly_run.intervals.size(), free_run.intervals.size());
  EXPECT_LE(costly_run.payload_bytes, free_run.payload_bytes);

  // First interval of the second epoch: shifted by exactly the charge.
  std::size_t switch_index = 0;
  while (switch_index < costly_run.intervals.size() &&
         costly_run.intervals[switch_index].epoch ==
             costly_run.intervals[0].epoch) {
    ++switch_index;
  }
  ASSERT_LT(switch_index, costly_run.intervals.size());
  ASSERT_LT(switch_index, free_run.intervals.size());
  EXPECT_EQ(free_run.intervals[switch_index].epoch,
            costly_run.intervals[switch_index].epoch);
  EXPECT_NEAR(costly_run.intervals[switch_index].start_time_s -
                  free_run.intervals[switch_index].start_time_s,
              config.recalibration_cost_s, 1e-9);
  // Identical decisions up to the switch.
  for (std::size_t i = 0; i < switch_index; ++i) {
    EXPECT_EQ(costly_run.intervals[i].rung, free_run.intervals[i].rung);
    EXPECT_EQ(costly_run.intervals[i].start_time_s,
              free_run.intervals[i].start_time_s);
  }

  EXPECT_THROW(
      {
        AdaptiveLinkConfig broken;
        broken.recalibration_cost_s = -1.0;
        AdaptiveLinkSimulator bad_sim(broken, trajectory);
      },
      std::invalid_argument);
}

// ---------------------------------------------------------------- feedback

TEST(Adapt, FeedbackRejectsBadConfig) {
  EXPECT_THROW(FeedbackLink({.delay_intervals = -1}), std::invalid_argument);
  EXPECT_THROW(FeedbackLink({.loss_probability = 1.5}), std::invalid_argument);
}

TEST(Adapt, FeedbackDeliversAfterDelayInOrder) {
  FeedbackLink link({.delay_intervals = 2});
  EXPECT_TRUE(link.send({0, 3}, 0));
  EXPECT_TRUE(link.send({1, 1}, 0));
  EXPECT_TRUE(link.poll(1).empty());
  EXPECT_EQ(link.in_flight(), 2u);
  const std::vector<RungCommand> delivered = link.poll(2);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], (RungCommand{0, 3}));
  EXPECT_EQ(delivered[1], (RungCommand{1, 1}));
  EXPECT_EQ(link.commands_delivered(), 2);
  EXPECT_TRUE(link.poll(99).empty());
}

TEST(Adapt, FeedbackLossIsSeededAndCounted) {
  FeedbackLink lossy({.delay_intervals = 0, .loss_probability = 0.5}, 42);
  FeedbackLink twin({.delay_intervals = 0, .loss_probability = 0.5}, 42);
  int lost = 0;
  for (int i = 0; i < 64; ++i) {
    const bool a = lossy.send({i, 0}, i);
    const bool b = twin.send({i, 0}, i);
    EXPECT_EQ(a, b) << "loss draws must be reproducible per seed";
    if (!a) ++lost;
  }
  EXPECT_EQ(lossy.commands_lost(), lost);
  EXPECT_GT(lost, 0);
  EXPECT_LT(lost, 64);
  EXPECT_EQ(lossy.commands_sent(), 64);
}

// ------------------------------------------------- streaming epoch switch

/// Transmits `payload_bytes` fresh random bytes at `order`/`rate` and
/// captures the emission with the ideal profile; returns everything the
/// epoch test needs to stream and verify one epoch.
struct EpochCapture {
  EpochCapture(csk::CskOrder order, double rate_hz, std::uint64_t seed) {
    const camera::SensorProfile profile = camera::ideal_profile();
    const rs::CodeParameters code = core::derive_link_code(
        order, rate_hz, profile.fps, profile.inter_frame_loss_ratio, 0.8);
    tx::TransmitterConfig tx_config;
    tx_config.format.order = order;
    tx_config.symbol_rate_hz = rate_hz;
    tx_config.rs_n = code.n;
    tx_config.rs_k = code.k;
    rx_config.format = tx_config.format;
    rx_config.symbol_rate_hz = rate_hz;
    rx_config.frame_rate_hz = profile.fps;
    rx_config.rs_n = code.n;
    rx_config.rs_k = code.k;

    util::Xoshiro256 rng(seed);
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(code.k) * 6);
    for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.below(256));
    const tx::Transmitter transmitter(tx_config);
    transmission = transmitter.transmit(payload);
    camera::RollingShutterCamera camera(profile, {}, seed + 1);
    frames = camera.capture_video(transmission.trace);
  }

  rx::ReceiverConfig rx_config;
  tx::Transmission transmission;
  std::vector<camera::Frame> frames;
};

TEST(Adapt, StreamingEpochSwitchRecalibratesAndTagsRecords) {
  const EpochCapture first(csk::CskOrder::kCsk8, 2000.0, 9001);
  const EpochCapture second(csk::CskOrder::kCsk16, 1000.0, 9002);

  rx::StreamingReceiver streaming(first.rx_config);
  EXPECT_EQ(streaming.epoch(), 0);
  for (const camera::Frame& frame : first.frames) {
    streaming.push_frame(frame);
    (void)streaming.poll();
  }
  streaming.begin_epoch(second.rx_config);
  EXPECT_EQ(streaming.epoch(), 1);
  EXPECT_EQ(streaming.stats().epoch_switches, 1);

  for (const camera::Frame& frame : second.frames) {
    streaming.push_frame(frame);
    (void)streaming.poll();
  }
  (void)streaming.finish();

  const rx::ReceiverReport& report = streaming.report();
  int epoch0_ok = 0;
  int epoch1_ok = 0;
  for (const rx::PacketRecord& record : report.packets) {
    if (record.kind != protocol::PacketKind::kData || !record.ok) continue;
    if (record.epoch == 0) ++epoch0_ok;
    if (record.epoch == 1) ++epoch1_ok;
    // Each epoch's slot grid restarts at zero: a decoded record's start
    // slot must be small relative to a single capture, not cumulative.
    EXPECT_GE(record.start_slot, 0);
  }
  // Both epochs decoded against their own calibration despite the order
  // AND symbol-rate change mid-stream.
  EXPECT_GT(epoch0_ok, 0);
  EXPECT_GT(epoch1_ok, 0);

  // The window span keeps accumulating across epochs.
  EXPECT_GT(report.slot_span, 0);
}

TEST(Adapt, StreamingEpochSwitchMatchesFreshReceiver) {
  const EpochCapture first(csk::CskOrder::kCsk8, 2000.0, 7001);
  const EpochCapture second(csk::CskOrder::kCsk8, 1000.0, 7002);

  // Stream capture A, switch, stream capture B...
  rx::StreamingReceiver switched(first.rx_config);
  for (const camera::Frame& frame : first.frames) {
    switched.push_frame(frame);
    (void)switched.poll();
  }
  switched.begin_epoch(second.rx_config);
  for (const camera::Frame& frame : second.frames) {
    switched.push_frame(frame);
    (void)switched.poll();
  }
  (void)switched.finish();

  // ...and compare epoch 1 against a receiver that never saw epoch 0.
  rx::StreamingReceiver fresh(second.rx_config);
  for (const camera::Frame& frame : second.frames) {
    fresh.push_frame(frame);
    (void)fresh.poll();
  }
  (void)fresh.finish();

  std::vector<const rx::PacketRecord*> switched_records;
  for (const rx::PacketRecord& record : switched.report().packets) {
    if (record.epoch == 1) switched_records.push_back(&record);
  }
  const rx::ReceiverReport& fresh_report = fresh.report();
  ASSERT_EQ(switched_records.size(), fresh_report.packets.size());
  for (std::size_t i = 0; i < switched_records.size(); ++i) {
    EXPECT_EQ(switched_records[i]->start_slot, fresh_report.packets[i].start_slot);
    EXPECT_EQ(switched_records[i]->ok, fresh_report.packets[i].ok);
    EXPECT_EQ(switched_records[i]->payload, fresh_report.packets[i].payload);
  }
}

// ------------------------------------------------------------- end to end

TEST(Adapt, SimulatorValidatesConfiguration) {
  Trajectory empty;
  EXPECT_THROW(AdaptiveLinkSimulator({}, empty), std::invalid_argument);

  Trajectory bad = walkaway_trajectory();
  bad.segments[0].duration_s = 0.0;
  EXPECT_THROW(AdaptiveLinkSimulator({}, bad), std::invalid_argument);

  AdaptiveLinkConfig config;
  config.initial_rung = 99;
  EXPECT_THROW(AdaptiveLinkSimulator(config, walkaway_trajectory()),
               std::invalid_argument);
}

TEST(Adapt, TrajectorySegmentLookup) {
  const Trajectory trajectory = walkaway_trajectory();
  EXPECT_EQ(trajectory.segment_index_at(0.0), 0);
  EXPECT_EQ(trajectory.segment_index_at(trajectory.total_duration_s() + 10.0),
            static_cast<int>(trajectory.segments.size()) - 1);
  double boundary = trajectory.segments[0].duration_s;
  EXPECT_EQ(trajectory.segment_index_at(boundary - 1e-6), 0);
  EXPECT_EQ(trajectory.segment_index_at(boundary + 1e-6), 1);
}

TEST(Adapt, ClosedLoopDownshiftsWhenChannelWorsens) {
  // Short two-leg trajectory: healthy close range, then past the top
  // rung's ISI cliff. The closed loop must react by downshifting and
  // keep recovering bytes after the transition.
  Trajectory trajectory;
  TrajectorySegment near;
  near.name = "near";
  near.duration_s = 1.4;
  near.channel.distance.distance_m = 0.08;
  near.channel.distance.reference_distance_m = 0.08;
  TrajectorySegment far = near;
  far.name = "far";
  far.duration_s = 2.2;
  far.channel.distance.distance_m = 0.13;
  trajectory.segments = {near, far};

  AdaptiveLinkConfig config;
  config.profile = camera::ideal_profile();
  config.feedback.delay_intervals = 0;
  AdaptiveLinkSimulator simulator(config, trajectory);
  const AdaptiveRunResult result = simulator.run();

  EXPECT_GT(result.downshifts, 0);
  EXPECT_GT(result.epochs, 1);
  EXPECT_LT(result.final_rung, config.resolved_initial_rung());
  EXPECT_GT(result.recovered_bytes, 0);
  // Bytes recovered on both sides of the transition.
  long long near_bytes = 0;
  long long far_bytes = 0;
  for (const IntervalRecord& record : result.intervals) {
    (record.segment == 0 ? near_bytes : far_bytes) += record.recovered_bytes;
  }
  EXPECT_GT(near_bytes, 0);
  EXPECT_GT(far_bytes, 0);
  EXPECT_EQ(result.stream_stats.epoch_switches, result.epochs - 1);
}

TEST(Adapt, FrozenPolicyNeverSwitches) {
  Trajectory trajectory;
  TrajectorySegment leg;
  leg.duration_s = 1.0;
  leg.channel.distance.distance_m = 0.13;  // would trigger a downshift
  leg.channel.distance.reference_distance_m = 0.08;
  trajectory.segments = {leg};

  AdaptiveLinkConfig config;
  config.adaptation_enabled = false;
  config.profile = camera::ideal_profile();
  AdaptiveLinkSimulator simulator(config, trajectory);
  const AdaptiveRunResult result = simulator.run();
  EXPECT_EQ(result.epochs, 1);
  EXPECT_EQ(result.upshifts + result.downshifts, 0);
  EXPECT_EQ(result.final_rung, config.resolved_initial_rung());
  EXPECT_EQ(result.commands_sent, 0);
}

}  // namespace
}  // namespace colorbars::adapt
