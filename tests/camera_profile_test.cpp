#include "colorbars/camera/profile.hpp"

#include <gtest/gtest.h>

namespace colorbars::camera {
namespace {

TEST(Profiles, Nexus5MatchesTable1) {
  const SensorProfile profile = nexus5_profile();
  EXPECT_EQ(profile.name, "Nexus 5");
  EXPECT_EQ(profile.rows, 2448);
  EXPECT_DOUBLE_EQ(profile.fps, 30.0);
  EXPECT_DOUBLE_EQ(profile.inter_frame_loss_ratio, 0.2312);
}

TEST(Profiles, Iphone5sMatchesTable1) {
  const SensorProfile profile = iphone5s_profile();
  EXPECT_EQ(profile.name, "iPhone 5S");
  EXPECT_EQ(profile.rows, 1080);
  EXPECT_DOUBLE_EQ(profile.fps, 30.0);
  EXPECT_DOUBLE_EQ(profile.inter_frame_loss_ratio, 0.3727);
}

TEST(Profiles, IphoneLosesMoreThanNexus) {
  // The paper's central device asymmetry.
  EXPECT_GT(iphone5s_profile().inter_frame_loss_ratio,
            nexus5_profile().inter_frame_loss_ratio);
}

TEST(Profiles, NexusHasNoisierColorPath) {
  // Nexus 5 is modeled with stronger CFA crosstalk and noise, the cause
  // of its higher SER in Fig. 9.
  EXPECT_GT(nexus5_profile().read_noise, iphone5s_profile().read_noise);
  EXPECT_LT(nexus5_profile().well_capacity, iphone5s_profile().well_capacity);
}

TEST(Profiles, TimingDecomposesFramePeriod) {
  for (const SensorProfile& profile :
       {nexus5_profile(), iphone5s_profile(), ideal_profile()}) {
    EXPECT_NEAR(profile.readout_duration_s() + profile.gap_duration_s(),
                profile.frame_period_s(), 1e-12)
        << profile.name;
    EXPECT_NEAR(profile.row_time_s() * profile.rows, profile.readout_duration_s(), 1e-12);
  }
}

TEST(Profiles, BandRowsMatchesHandComputation) {
  const SensorProfile nexus = nexus5_profile();
  // Readout = (1 - 0.2312)/30 = 25.63 ms over 2448 rows -> 10.47 us/row;
  // at 1000 sym/s a band is ~95.5 rows.
  EXPECT_NEAR(nexus.row_time_s() * 1e6, 10.47, 0.01);
  EXPECT_NEAR(nexus.band_rows(1000), 95.5, 0.5);
  EXPECT_NEAR(nexus.band_rows(4000), 23.9, 0.2);
}

TEST(Profiles, BandRowsShrinkWithSymbolRate) {
  // Fig. 3c: higher symbol frequency -> narrower bands.
  const SensorProfile profile = iphone5s_profile();
  EXPECT_GT(profile.band_rows(1000), profile.band_rows(3000));
  EXPECT_NEAR(profile.band_rows(1000) / profile.band_rows(3000), 3.0, 1e-9);
}

TEST(Profiles, ColorResponsesDifferAcrossDevices) {
  // Fig. 6a's premise: the two devices map XYZ to sensor RGB differently.
  const auto nexus = nexus5_profile().xyz_to_sensor_rgb;
  const auto iphone = iphone5s_profile().xyz_to_sensor_rgb;
  double difference = 0.0;
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      difference += std::abs(nexus(r, c) - iphone(r, c));
    }
  }
  EXPECT_GT(difference, 0.1);
}

TEST(Profiles, IdealProfileHasNoVignetting) {
  EXPECT_DOUBLE_EQ(ideal_profile().vignette_strength, 0.0);
}

}  // namespace
}  // namespace colorbars::camera
