// The receiver frontend seam: a SlotObservationSource must feed the
// streaming back half exactly the observation stream its offline path
// produces, and the two shipped frontends (rolling-shutter camera,
// photodiode array) must agree byte-for-byte on every payload they both
// recover from the same emission.

#include "colorbars/frontend/frontend.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "colorbars/core/link.hpp"
#include "colorbars/pd/frontend.hpp"
#include "colorbars/runtime/seed.hpp"
#include "colorbars/rx/streaming.hpp"
#include "colorbars/tx/transmitter.hpp"

namespace colorbars {
namespace {

core::LinkConfig small_link() {
  core::LinkConfig config;
  config.order = csk::CskOrder::kCsk8;
  config.symbol_rate_hz = 2000.0;
  config.profile = camera::ideal_profile();
  config.seed = 0xf20f7;
  return config;
}

/// Exact-compare flattening (slots_scanned excluded by design: the
/// incremental parse re-scans deferred head positions).
std::vector<long long> flatten_report(const rx::ReceiverReport& report) {
  std::vector<long long> flat;
  flat.push_back(static_cast<long long>(report.packets.size()));
  for (const rx::PacketRecord& packet : report.packets) {
    flat.push_back(static_cast<long long>(packet.kind));
    flat.push_back(packet.ok ? 1 : 0);
    flat.push_back(static_cast<long long>(packet.failure));
    flat.push_back(packet.start_slot);
    flat.push_back(packet.corrected_errors);
    flat.push_back(packet.corrected_erasures);
    flat.push_back(packet.erased_slots);
    for (std::uint8_t byte : packet.payload) flat.push_back(byte);
  }
  for (std::uint8_t byte : report.payload) flat.push_back(byte);
  flat.push_back(report.slots_observed);
  flat.push_back(report.slot_span);
  flat.push_back(report.calibration_packets);
  flat.push_back(report.data_packets_ok);
  flat.push_back(report.data_packets_failed);
  return flat;
}

TEST(Frontend, CameraFrontendDecodesByteIdenticallyToDirectCapture) {
  // The seam's byte-identity pin: CameraFrontend blocks pushed through
  // push_observations must decode exactly as capture_video frames
  // through the batch receiver, given the same capture seed.
  const core::LinkConfig link = small_link();
  const tx::Transmitter transmitter(link.transmitter_config());
  std::vector<std::uint8_t> payload(400);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 13 + 5);
  }
  const tx::Transmission transmission = transmitter.transmit(payload);
  const std::uint64_t capture_seed = 0xcafe5eed;
  const double start_offset = 0.002;

  // Reference: the offline capture + batch decode, seeded exactly as
  // the frontend seeds itself (kOpticalSeedStream for the channel,
  // the capture seed itself for sensor noise).
  camera::RollingShutterCamera camera(
      link.profile,
      channel::OpticalChannel(link.channel, runtime::derive_stream_seed(
                                                capture_seed,
                                                frontend::kOpticalSeedStream)),
      capture_seed);
  const std::vector<camera::Frame> frames =
      camera.capture_video(transmission.trace, start_offset);
  rx::Receiver batch(link.receiver_config());
  const std::vector<long long> reference = flatten_report(batch.process(frames));

  // Seam path: CameraFrontend -> push_observations -> streaming drain.
  frontend::CameraFrontendConfig config;
  config.profile = link.profile;
  config.channel = link.channel;
  config.symbol_rate_hz = link.symbol_rate_hz;
  config.extractor = link.receiver_config().extractor;
  config.start_offset_s = start_offset;
  frontend::CameraFrontend source(config, transmission.trace, capture_seed);
  rx::StreamingReceiver receiver(link.receiver_config());
  const frontend::FrontendRunStats stats = frontend::run_frontend(source, receiver);

  EXPECT_EQ(flatten_report(receiver.report()), reference);
  EXPECT_EQ(stats.blocks, source.frames_delivered());
  EXPECT_EQ(stats.blocks, static_cast<long long>(frames.size()));
  EXPECT_GT(stats.observations, 0);
  EXPECT_EQ(source.frames_dropped(), 0);  // identity channel drops nothing
}

TEST(Frontend, CollectTimelineMatchesStreamedObservationCount) {
  const core::LinkConfig link = small_link();
  const tx::Transmitter transmitter(link.transmitter_config());
  const std::vector<std::uint8_t> payload(120, 0x5a);
  const tx::Transmission transmission = transmitter.transmit(payload);

  frontend::CameraFrontendConfig config;
  config.profile = link.profile;
  config.symbol_rate_hz = link.symbol_rate_hz;
  config.extractor = link.receiver_config().extractor;

  frontend::CameraFrontend for_stats(config, transmission.trace, 0xabc);
  rx::StreamingReceiver receiver(link.receiver_config());
  const frontend::FrontendRunStats stats = frontend::run_frontend(for_stats, receiver);

  frontend::CameraFrontend for_timeline(config, transmission.trace, 0xabc);
  const rx::SlotTimeline timeline = frontend::collect_timeline(for_timeline);
  const auto observed = static_cast<long long>(timeline.observed_count());
  // Distinct observed slots can be fewer than raw observations (two
  // bands of adjacent frames may land in one slot), never more.
  EXPECT_GT(observed, 0);
  EXPECT_LE(observed, stats.observations);
  EXPECT_EQ(receiver.report().slots_observed, observed);
}

TEST(Frontend, CameraAndPdRecoverIdenticalPayloadBytesFromOneEmission) {
  // The cross-frontend validation the seam exists for: one transmission,
  // decoded by both sensors under one LinkConfig. The photodiode sees
  // every slot (no inter-frame gap) and must recover the whole payload;
  // every data packet the camera recovers must exist in the pd decode at
  // the same start slot with identical bytes.
  std::vector<std::uint8_t> payload(500);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  core::LinkConfig config = small_link();
  core::LinkSimulator camera_link(config);
  const core::LinkRunResult camera_run = camera_link.run_payload(payload);

  core::LinkConfig pd_config = config;
  pd_config.frontend = frontend::FrontendKind::kPhotodiode;
  core::LinkSimulator pd_link(pd_config);
  const core::LinkRunResult pd_run = pd_link.run_payload(payload);

  // The pd frontend misses nothing, so the full payload comes back
  // (the tail packet may carry padding past the payload length).
  ASSERT_GE(pd_run.report.payload.size(), payload.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), pd_run.report.payload.begin()));
  EXPECT_GE(pd_run.recovered_bytes, payload.size());

  // The camera loses packets whose headers fall in the inter-frame gap,
  // but everything it does recover must match the pd decode byte for
  // byte.
  int camera_data_packets = 0;
  for (const rx::PacketRecord& camera_packet : camera_run.report.packets) {
    if (!camera_packet.ok || camera_packet.kind != protocol::PacketKind::kData) continue;
    ++camera_data_packets;
    bool found = false;
    for (const rx::PacketRecord& pd_packet : pd_run.report.packets) {
      if (pd_packet.start_slot != camera_packet.start_slot) continue;
      found = true;
      EXPECT_TRUE(pd_packet.ok);
      EXPECT_EQ(pd_packet.payload, camera_packet.payload)
          << "frontends disagree at slot " << camera_packet.start_slot;
      break;
    }
    EXPECT_TRUE(found) << "camera packet at slot " << camera_packet.start_slot
                       << " missing from the pd decode";
  }
  EXPECT_GT(camera_data_packets, 0);
}

TEST(Frontend, PhotodiodeObservesEverySlotTheCameraGapDrops) {
  // Same SER measurement on both frontends: the camera's inter-frame
  // gap loses ~25% of slots on the ideal profile; the photodiode has no
  // gap, so it observes all of them with no errors at close range.
  core::LinkConfig config = small_link();
  core::LinkSimulator camera_link(config);
  const core::SerResult camera_ser = camera_link.run_ser(1500);

  config.frontend = frontend::FrontendKind::kPhotodiode;
  core::LinkSimulator pd_link(config);
  const core::SerResult pd_ser = pd_link.run_ser(1500);

  EXPECT_EQ(pd_ser.symbols_observed, pd_ser.symbols_sent);
  EXPECT_DOUBLE_EQ(pd_ser.inter_frame_loss_ratio, 0.0);
  EXPECT_EQ(pd_ser.symbol_errors, 0);
  EXPECT_LT(camera_ser.symbols_observed, camera_ser.symbols_sent);
  EXPECT_GT(camera_ser.inter_frame_loss_ratio, 0.1);
}

TEST(Frontend, SeedStreamsArePinned) {
  // The sub-stream constants are part of the byte-identity contract
  // with the frozen golden hashes — changing them silently would
  // invalidate every pre-seam capture. Keep them pinned.
  EXPECT_EQ(frontend::kOpticalSeedStream, 0x0cc10ca1u);
  EXPECT_EQ(frontend::kFrameStageSeedStream, 0x57a9e5u);
  EXPECT_EQ(frontend::kPdNoiseSeedStream, 0x50d10deu);
}

}  // namespace
}  // namespace colorbars
