#include <gtest/gtest.h>

#include "colorbars/color/lab.hpp"
#include "colorbars/util/rng.hpp"

namespace colorbars::color {
namespace {

TEST(DeltaE94, ZeroForIdenticalColors) {
  const Lab color{55, 20, -30};
  EXPECT_DOUBLE_EQ(delta_e_94(color, color), 0.0);
}

TEST(DeltaE94, MatchesCie76ForPureLightnessDifferences) {
  // With no chroma, the weighting terms are 1 and the metrics agree.
  const Lab a{40, 0, 0};
  const Lab b{70, 0, 0};
  EXPECT_NEAR(delta_e_94(a, b), delta_e(a, b), 1e-9);
}

TEST(DeltaE94, DiscountsChromaDifferencesBetweenSaturatedColors) {
  // Same absolute chroma step, once near neutral and once in saturated
  // territory: CIE94 must penalize the saturated pair less.
  const Lab neutral_a{50, 2, 0};
  const Lab neutral_b{50, 12, 0};
  const Lab saturated_a{50, 82, 0};
  const Lab saturated_b{50, 92, 0};
  EXPECT_LT(delta_e_94(saturated_a, saturated_b), delta_e_94(neutral_a, neutral_b));
  // Whereas CIE76 sees them as equal.
  EXPECT_NEAR(delta_e(neutral_a, neutral_b), delta_e(saturated_a, saturated_b), 1e-9);
}

TEST(DeltaE94, NeverExceedsCie76) {
  // The S weights are >= 1, so CIE94 is a contraction of CIE76.
  util::Xoshiro256 rng(909);
  for (int i = 0; i < 500; ++i) {
    const Lab p{rng.uniform(0, 100), rng.uniform(-80, 80), rng.uniform(-80, 80)};
    const Lab q{rng.uniform(0, 100), rng.uniform(-80, 80), rng.uniform(-80, 80)};
    EXPECT_LE(delta_e_94(p, q), delta_e(p, q) + 1e-9);
  }
}

TEST(DeltaE94, NonNegative) {
  util::Xoshiro256 rng(910);
  for (int i = 0; i < 200; ++i) {
    const Lab p{rng.uniform(0, 100), rng.uniform(-80, 80), rng.uniform(-80, 80)};
    const Lab q{rng.uniform(0, 100), rng.uniform(-80, 80), rng.uniform(-80, 80)};
    EXPECT_GE(delta_e_94(p, q), 0.0);
  }
}

}  // namespace
}  // namespace colorbars::color
