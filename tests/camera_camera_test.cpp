#include "colorbars/camera/camera.hpp"

#include <gtest/gtest.h>

#include "colorbars/csk/modulation.hpp"
#include "colorbars/led/tri_led.hpp"
#include "colorbars/rx/band_extractor.hpp"

namespace colorbars::camera {
namespace {

led::EmissionTrace steady_white(double duration_s) {
  const led::TriLed led;
  led::EmissionTrace trace;
  trace.append(duration_s, led.radiance(csk::white_drive()));
  return trace;
}

TEST(Camera, RejectsInvalidProfile) {
  SensorProfile bad = ideal_profile();
  bad.rows = 0;
  EXPECT_THROW((void)RollingShutterCamera(bad, channel::OpticalChannel{}), std::invalid_argument);
  bad = ideal_profile();
  bad.inter_frame_loss_ratio = 1.0;
  EXPECT_THROW((void)RollingShutterCamera(bad, channel::OpticalChannel{}), std::invalid_argument);
}

TEST(Camera, FrameHasProfileDimensionsAndTiming) {
  const SensorProfile profile = ideal_profile();
  RollingShutterCamera camera(profile);
  const Frame frame = camera.capture_frame(steady_white(0.1), 0.0);
  EXPECT_EQ(frame.rows, profile.rows);
  EXPECT_EQ(frame.columns, profile.columns);
  EXPECT_DOUBLE_EQ(frame.row_time_s, profile.row_time_s());
}

TEST(Camera, VideoFrameCountMatchesDuration) {
  SensorProfile profile = ideal_profile();
  profile.frame_start_jitter_s = 0.0;
  RollingShutterCamera camera(profile, channel::OpticalChannel{});
  const auto frames = camera.capture_video(steady_white(0.5));
  EXPECT_EQ(frames.size(), 15u);  // 0.5 s at 30 fps
  for (std::size_t i = 0; i < frames.size(); ++i) {
    EXPECT_EQ(frames[i].frame_index, static_cast<int>(i));
    EXPECT_NEAR(frames[i].start_time_s, i / 30.0, 1e-12);
  }
}

TEST(Camera, FrameStartJitterStaysInsideGap) {
  SensorProfile profile = ideal_profile();
  profile.frame_start_jitter_s = 0.005;  // above the 0.8 * gap clamp
  RollingShutterCamera camera(profile, channel::OpticalChannel{});
  const auto frames = camera.capture_video(steady_white(1.0));
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const double offset = frames[i].start_time_s - i * profile.frame_period_s();
    EXPECT_GE(offset, 0.0);
    EXPECT_LE(offset, 0.8 * profile.gap_duration_s() + 1e-12);
    if (i > 0) {
      // Readouts must never overlap.
      EXPECT_GE(frames[i].start_time_s, frames[i - 1].start_time_s +
                                            profile.readout_duration_s() - 1e-12);
    }
  }
}

TEST(Camera, AutoExposureHitsTarget) {
  const SensorProfile profile = ideal_profile();
  RollingShutterCamera camera(profile);
  const led::TriLed led;
  const ExposureSettings settings = camera.auto_exposure(led.radiance(csk::white_drive()));
  // Re-derive the mean green response at the chosen settings.
  const auto sensor = profile.xyz_to_sensor_rgb * led.radiance(csk::white_drive());
  const double response = sensor.y * profile.sensitivity * (settings.iso / 100.0) *
                          (settings.exposure_s * 1000.0);
  EXPECT_NEAR(response, profile.auto_exposure_target, 0.05);
}

TEST(Camera, AutoExposureRaisesIsoInDarkScenes) {
  RollingShutterCamera camera(ideal_profile());
  const ExposureSettings dim = camera.auto_exposure({0.0004, 0.0004, 0.0004});
  EXPECT_GT(dim.iso, 100.0);
  EXPECT_DOUBLE_EQ(dim.exposure_s, ideal_profile().max_exposure_s);
}

TEST(Camera, AutoExposureClampsToLimits) {
  RollingShutterCamera camera(ideal_profile());
  const ExposureSettings bright = camera.auto_exposure({1e5, 1e5, 1e5});
  EXPECT_DOUBLE_EQ(bright.exposure_s, ideal_profile().min_exposure_s);
  const ExposureSettings black = camera.auto_exposure({0, 0, 0});
  EXPECT_LE(black.iso, ideal_profile().max_iso);
}

TEST(Camera, SteadyWhiteProducesUniformBrightFrame) {
  RollingShutterCamera camera(ideal_profile());
  const Frame frame = camera.capture_frame(steady_white(0.1), 0.01);
  // Sample interior pixels; all should be bright and neutral.
  const color::Rgb8 center = frame.at(frame.rows / 2, frame.columns / 2);
  EXPECT_GT(center.g, 100);
  EXPECT_NEAR(center.r, center.g, 40);
  EXPECT_NEAR(center.b, center.g, 40);
}

TEST(Camera, DarkTraceProducesDarkFrame) {
  RollingShutterCamera camera(ideal_profile());
  camera.set_manual_exposure({1.0 / 8000.0, 100.0});
  led::EmissionTrace dark;
  dark.append(0.1, {0, 0, 0});
  const Frame frame = camera.capture_frame(dark, 0.01);
  const color::Rgb8 center = frame.at(frame.rows / 2, frame.columns / 2);
  EXPECT_LT(center.g, 40);
}

TEST(Camera, ManualExposureIsHonored) {
  RollingShutterCamera camera(ideal_profile());
  camera.set_manual_exposure({1.0 / 4000.0, 800.0});
  const Frame frame = camera.capture_frame(steady_white(0.1), 0.0);
  EXPECT_DOUBLE_EQ(frame.exposure_s, 1.0 / 4000.0);
  EXPECT_DOUBLE_EQ(frame.iso, 800.0);
}

TEST(Camera, LongerExposureBrightensImage) {
  SensorProfile profile = ideal_profile();
  RollingShutterCamera camera(profile);
  led::EmissionTrace trace;
  const led::TriLed led;
  trace.append(0.2, led.radiance(csk::white_drive()) * 0.08);

  camera.set_manual_exposure({1.0 / 4000.0, 100.0});
  const Frame dim = camera.capture_frame(trace, 0.01);
  camera.set_manual_exposure({1.0 / 500.0, 100.0});
  const Frame bright = camera.capture_frame(trace, 0.01);
  EXPECT_GT(bright.at(500, 10).g, dim.at(500, 10).g);
}

TEST(Camera, HigherIsoIsNoisier) {
  SensorProfile profile = ideal_profile();
  profile.vignette_strength = 0.0;
  const led::TriLed led;
  led::EmissionTrace trace;
  trace.append(0.2, led.radiance(csk::white_drive()) * 0.1);

  auto column_stddev = [](const Frame& frame) {
    double sum = 0.0;
    double sum_sq = 0.0;
    int count = 0;
    for (int r = 100; r < frame.rows - 100; ++r) {
      const double v = frame.at(r, frame.columns / 2).g / 255.0;
      sum += v;
      sum_sq += v * v;
      ++count;
    }
    const double mean = sum / count;
    return std::sqrt(std::max(sum_sq / count - mean * mean, 0.0));
  };

  RollingShutterCamera camera_low(profile, {}, 1);
  camera_low.set_manual_exposure({1.0 / 2000.0, 100.0});
  RollingShutterCamera camera_high(profile, {}, 1);
  // Same total brightness: 16x ISO, 1/16 exposure.
  camera_high.set_manual_exposure({1.0 / 32000.0, 1600.0});
  const double low = column_stddev(camera_low.capture_frame(trace, 0.01));
  const double high = column_stddev(camera_high.capture_frame(trace, 0.01));
  EXPECT_GT(high, low);
}

TEST(Camera, VignetteDarkensCorners) {
  SensorProfile profile = nexus5_profile();
  RollingShutterCamera camera(profile);
  EXPECT_NEAR(camera.vignette_gain(profile.rows / 2, profile.columns / 2), 1.0, 1e-3);
  EXPECT_LT(camera.vignette_gain(0, 0), 0.85);
  EXPECT_NEAR(camera.vignette_gain(0, 0),
              camera.vignette_gain(profile.rows - 1, profile.columns - 1), 0.01);
}

TEST(Camera, NoiseIsDeterministicPerSeed) {
  RollingShutterCamera a(ideal_profile(), {}, 99);
  RollingShutterCamera b(ideal_profile(), {}, 99);
  const Frame fa = a.capture_frame(steady_white(0.1), 0.0);
  const Frame fb = b.capture_frame(steady_white(0.1), 0.0);
  EXPECT_EQ(fa.pixels.size(), fb.pixels.size());
  for (std::size_t i = 0; i < fa.pixels.size(); ++i) {
    ASSERT_EQ(fa.pixels[i], fb.pixels[i]);
  }
}

TEST(Camera, RollingShutterRendersAlternationAsBands) {
  // The defining phenomenon (paper Fig. 1a): an LED alternating ON/OFF
  // at 500 Hz appears as alternating bright/dark horizontal bands.
  const led::TriLed led;
  led::EmissionTrace trace;
  for (int i = 0; i < 200; ++i) {
    trace.append(1.0 / 500.0,
                 i % 2 == 0 ? led.radiance(csk::white_drive()) : led::Vec3{});
  }
  RollingShutterCamera camera(ideal_profile());
  const Frame frame = camera.capture_frame(trace, 0.05);
  int transitions = 0;
  bool bright = frame.at(0, frame.columns / 2).g > 64;
  for (int r = 1; r < frame.rows; ++r) {
    const bool now = frame.at(r, frame.columns / 2).g > 64;
    if (now != bright) {
      ++transitions;
      bright = now;
    }
  }
  // 2 ms period over a ~25 ms readout -> roughly 24 transitions.
  EXPECT_GT(transitions, 10);
  EXPECT_LT(transitions, 40);
}

}  // namespace
}  // namespace colorbars::camera
