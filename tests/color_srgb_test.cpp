#include "colorbars/color/srgb.hpp"

#include <gtest/gtest.h>

#include "colorbars/util/rng.hpp"

namespace colorbars::color {
namespace {

TEST(Srgb, TransferFunctionRoundTrips) {
  util::Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double linear = rng.uniform();
    EXPECT_NEAR(srgb_decode(srgb_encode(linear)), linear, 1e-12);
  }
}

TEST(Srgb, TransferFunctionIsMonotonic) {
  double previous = -1.0;
  for (double v = 0.0; v <= 1.0; v += 0.001) {
    const double encoded = srgb_encode(v);
    EXPECT_GT(encoded, previous);
    previous = encoded;
  }
}

TEST(Srgb, EncodeEndpointsAreFixed) {
  EXPECT_DOUBLE_EQ(srgb_encode(0.0), 0.0);
  EXPECT_NEAR(srgb_encode(1.0), 1.0, 1e-12);
}

TEST(Srgb, LinearBranchMatchesAtKnee) {
  // The two branches of the piecewise function meet near 0.0031308.
  const double knee = 0.0031308;
  EXPECT_NEAR(12.92 * knee, 1.055 * std::pow(knee, 1.0 / 2.4) - 0.055, 2e-4);
}

TEST(Srgb, MatrixRoundTripsXyz) {
  util::Xoshiro256 rng(10);
  for (int i = 0; i < 100; ++i) {
    const util::Vec3 rgb{rng.uniform(), rng.uniform(), rng.uniform()};
    const util::Vec3 back = xyz_to_linear_srgb(linear_srgb_to_xyz(rgb));
    EXPECT_NEAR(back.x, rgb.x, 1e-9);
    EXPECT_NEAR(back.y, rgb.y, 1e-9);
    EXPECT_NEAR(back.z, rgb.z, 1e-9);
  }
}

TEST(Srgb, WhiteMapsToD65) {
  const XYZ white = linear_srgb_to_xyz({1, 1, 1});
  const xyY c = xyz_to_xyy(white);
  EXPECT_NEAR(c.xy.x, kD65.x, 1e-6);
  EXPECT_NEAR(c.xy.y, kD65.y, 1e-6);
  EXPECT_NEAR(c.Y, 1.0, 1e-9);
}

TEST(Srgb, GreenHasHighestLuminance) {
  const double red_y = linear_srgb_to_xyz({1, 0, 0}).y;
  const double green_y = linear_srgb_to_xyz({0, 1, 0}).y;
  const double blue_y = linear_srgb_to_xyz({0, 0, 1}).y;
  EXPECT_GT(green_y, red_y);
  EXPECT_GT(red_y, blue_y);
}

TEST(Srgb, Rgb8RoundTripsWithinQuantization) {
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 500; ++i) {
    const util::Vec3 encoded{rng.uniform(), rng.uniform(), rng.uniform()};
    const util::Vec3 back = from_rgb8(to_rgb8(encoded));
    EXPECT_NEAR(back.x, encoded.x, 0.5 / 255 + 1e-9);
    EXPECT_NEAR(back.y, encoded.y, 0.5 / 255 + 1e-9);
    EXPECT_NEAR(back.z, encoded.z, 0.5 / 255 + 1e-9);
  }
}

TEST(Srgb, Rgb8ClampsOutOfRange) {
  EXPECT_EQ(to_rgb8({2.0, -1.0, 0.5}), (Rgb8{255, 0, 128}));
}

TEST(Srgb, VectorEncodeClampsBeforeGamma) {
  const util::Vec3 encoded = srgb_encode(util::Vec3{1.5, -0.2, 0.25});
  EXPECT_DOUBLE_EQ(encoded.x, 1.0);
  EXPECT_DOUBLE_EQ(encoded.y, 0.0);
  EXPECT_NEAR(encoded.z, srgb_encode(0.25), 1e-12);
}

}  // namespace
}  // namespace colorbars::color
