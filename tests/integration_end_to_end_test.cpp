#include <gtest/gtest.h>

#include <string>

#include "colorbars/core/link.hpp"

namespace colorbars {
namespace {

/// Application-level round trip: a text message through the full stack
/// (RS -> packets -> CSK -> PWM LED -> rolling-shutter camera -> bands ->
/// calibration-matched demodulation -> RS decode).
TEST(Integration, TextMessageSurvivesTheLink) {
  const std::string message =
      "ColorBars: aisle 7, organic coffee 20% off today. Map: turn left at "
      "the end of this rack.";
  std::vector<std::uint8_t> payload(message.begin(), message.end());

  core::LinkConfig config;
  config.order = csk::CskOrder::kCsk8;
  config.symbol_rate_hz = 2000;
  config.profile = camera::ideal_profile();
  core::LinkSimulator sim(config);
  const core::LinkRunResult result = sim.run_payload(payload);

  // The recovered stream must contain the message's packets in order.
  // Headers that land in the inter-frame gap discard their packets
  // (paper §5), so a single pass recovers only part of the payload —
  // the deployment answer is the broadcast carousel (see examples/).
  EXPECT_GT(result.recovered_bytes, payload.size() * 3 / 10);

  // And whatever came back must be byte-exact against the original
  // (prefix alignment per packet is checked inside run_payload).
  EXPECT_EQ(result.payload_bytes, payload.size());
}

TEST(Integration, AllOrdersAndBothPhonesTransferData) {
  for (const auto& profile : {camera::nexus5_profile(), camera::iphone5s_profile()}) {
    for (const csk::CskOrder order : {csk::CskOrder::kCsk4, csk::CskOrder::kCsk16}) {
      core::LinkConfig config;
      config.order = order;
      config.symbol_rate_hz = 3000;
      config.profile = profile;
      core::LinkSimulator sim(config);
      std::vector<std::uint8_t> payload(200, 0x42);
      const core::LinkRunResult result = sim.run_payload(payload);
      EXPECT_GT(result.recovered_bytes, 0u)
          << profile.name << " CSK" << static_cast<int>(order);
    }
  }
}

TEST(Integration, HigherSymbolRateDeliversFasterAtFixedOrder) {
  // The Fig. 10 trend, end to end.
  core::LinkConfig slow;
  slow.order = csk::CskOrder::kCsk8;
  slow.symbol_rate_hz = 1000;
  core::LinkConfig fast = slow;
  fast.symbol_rate_hz = 4000;
  const auto slow_result = core::LinkSimulator(slow).run_throughput(1.5);
  const auto fast_result = core::LinkSimulator(fast).run_throughput(1.5);
  EXPECT_GT(fast_result.throughput_bps(), 2.5 * slow_result.throughput_bps());
}

TEST(Integration, CskBeatsFskBaselineByOrdersOfMagnitude) {
  // The headline claim: ColorBars reaches kbps where FSK gives ~0.1 kbps.
  core::LinkConfig config;
  config.order = csk::CskOrder::kCsk16;
  config.symbol_rate_hz = 4000;
  config.profile = camera::nexus5_profile();
  const auto csk_result = core::LinkSimulator(config).run_goodput(1.5);
  EXPECT_GT(csk_result.goodput_bps(), 2000.0);  // vs ~90 bps for FSK
}

TEST(Integration, WhiteIlluminationDoesNotBreakDecoding) {
  // Increasing the white fraction (more flicker margin) costs rate but
  // must not corrupt decoding.
  for (const double phi : {0.6, 0.8, 1.0}) {
    core::LinkConfig config;
    config.order = csk::CskOrder::kCsk8;
    config.symbol_rate_hz = 2000;
    config.illumination_ratio = phi;
    config.profile = camera::ideal_profile();
    core::LinkSimulator sim(config);
    std::vector<std::uint8_t> payload(150, 0x5a);
    const core::LinkRunResult result = sim.run_payload(payload);
    EXPECT_GT(result.recovered_bytes, 0u) << "phi " << phi;
  }
}

}  // namespace
}  // namespace colorbars
