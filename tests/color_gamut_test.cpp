#include "colorbars/color/gamut.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "colorbars/util/rng.hpp"

namespace colorbars::color {
namespace {

TEST(GamutTriangle, RejectsCollinearPrimaries) {
  EXPECT_THROW(GamutTriangle({0.1, 0.1}, {0.2, 0.2}, {0.3, 0.3}), std::invalid_argument);
}

TEST(GamutTriangle, VerticesHaveUnitBarycentricWeight) {
  const GamutTriangle& gamut = default_led_gamut();
  const Barycentric at_red = gamut.barycentric(gamut.red());
  EXPECT_NEAR(at_red.r, 1.0, 1e-12);
  EXPECT_NEAR(at_red.g, 0.0, 1e-12);
  EXPECT_NEAR(at_red.b, 0.0, 1e-12);
  const Barycentric at_green = gamut.barycentric(gamut.green());
  EXPECT_NEAR(at_green.g, 1.0, 1e-12);
  const Barycentric at_blue = gamut.barycentric(gamut.blue());
  EXPECT_NEAR(at_blue.b, 1.0, 1e-12);
}

TEST(GamutTriangle, BarycentricWeightsAlwaysSumToOne) {
  const GamutTriangle& gamut = default_led_gamut();
  util::Xoshiro256 rng(33);
  for (int i = 0; i < 500; ++i) {
    const Chromaticity p{rng.uniform(0.0, 0.8), rng.uniform(0.0, 0.8)};
    EXPECT_NEAR(gamut.barycentric(p).sum(), 1.0, 1e-9);
  }
}

TEST(GamutTriangle, AtInvertsBarycentric) {
  const GamutTriangle& gamut = default_led_gamut();
  util::Xoshiro256 rng(34);
  for (int i = 0; i < 200; ++i) {
    // Random point inside the triangle via normalized random weights.
    double r = rng.uniform(0.01, 1.0);
    double g = rng.uniform(0.01, 1.0);
    double b = rng.uniform(0.01, 1.0);
    const Chromaticity p = gamut.at({r, g, b});
    const Barycentric w = gamut.barycentric(p);
    const double sum = r + g + b;
    EXPECT_NEAR(w.r, r / sum, 1e-9);
    EXPECT_NEAR(w.g, g / sum, 1e-9);
    EXPECT_NEAR(w.b, b / sum, 1e-9);
  }
}

TEST(GamutTriangle, CentroidHasEqualWeights) {
  const GamutTriangle& gamut = default_led_gamut();
  const Barycentric w = gamut.barycentric(gamut.centroid());
  EXPECT_NEAR(w.r, 1.0 / 3, 1e-12);
  EXPECT_NEAR(w.g, 1.0 / 3, 1e-12);
  EXPECT_NEAR(w.b, 1.0 / 3, 1e-12);
}

TEST(GamutTriangle, ContainsInteriorRejectsExterior) {
  const GamutTriangle& gamut = default_led_gamut();
  EXPECT_TRUE(gamut.contains(gamut.centroid()));
  EXPECT_TRUE(gamut.contains(gamut.red()));
  EXPECT_FALSE(gamut.contains({0.9, 0.9}));
  EXPECT_FALSE(gamut.contains({0.0, 0.0}));
}

TEST(GamutTriangle, ContainsToleranceAbsorbsEdgeNoise) {
  const GamutTriangle& gamut = default_led_gamut();
  // A point epsilon outside an edge passes with a loose tolerance.
  const Chromaticity just_outside{gamut.red().x + 1e-6, gamut.red().y};
  EXPECT_TRUE(gamut.contains(just_outside, 1e-3));
}

TEST(GamutTriangle, MixtureOfVerticesStaysInside) {
  const GamutTriangle& gamut = default_led_gamut();
  util::Xoshiro256 rng(35);
  for (int i = 0; i < 200; ++i) {
    const double r = rng.uniform(0.0, 1.0);
    const double g = rng.uniform(0.0, 1.0 - r);
    const Chromaticity p = gamut.at({r, g, 1.0 - r - g});
    EXPECT_TRUE(gamut.contains(p, 1e-9));
  }
}

TEST(GamutTriangle, DefaultLedGamutIsWide) {
  // The tri-LED gamut must comfortably exceed sRGB to give CSK symbols
  // good separation.
  const GamutTriangle& gamut = default_led_gamut();
  EXPECT_GT(std::abs(gamut.signed_double_area()) / 2.0, 0.15);
}

}  // namespace
}  // namespace colorbars::color
