#include "colorbars/rx/receiver.hpp"

#include <gtest/gtest.h>

#include "colorbars/camera/camera.hpp"
#include "colorbars/core/link.hpp"
#include "colorbars/tx/transmitter.hpp"
#include "colorbars/util/rng.hpp"

namespace colorbars::rx {
namespace {

struct LinkFixture {
  explicit LinkFixture(csk::CskOrder order = csk::CskOrder::kCsk8,
                       double rate = 2000.0,
                       camera::SensorProfile profile = camera::ideal_profile()) {
    const rs::CodeParameters code = core::derive_link_code(
        order, rate, profile.fps, profile.inter_frame_loss_ratio, 0.8);
    tx_config.format.order = order;
    tx_config.format.illumination_ratio = 0.8;
    tx_config.symbol_rate_hz = rate;
    tx_config.rs_n = code.n;
    tx_config.rs_k = code.k;
    rx_config.format = tx_config.format;
    rx_config.symbol_rate_hz = rate;
    rx_config.rs_n = code.n;
    rx_config.rs_k = code.k;
    this->profile = std::move(profile);
  }

  std::vector<camera::Frame> send(std::span<const std::uint8_t> payload,
                                  tx::Transmission* out = nullptr,
                                  std::uint64_t camera_seed = 31337) {
    const tx::Transmitter transmitter(tx_config);
    tx::Transmission transmission = transmitter.transmit(payload);
    camera::RollingShutterCamera camera(profile, {}, camera_seed);
    auto frames = camera.capture_video(transmission.trace);
    if (out != nullptr) *out = std::move(transmission);
    return frames;
  }

  std::vector<std::uint8_t> random_payload(std::size_t size, std::uint64_t seed = 9) {
    util::Xoshiro256 rng(seed);
    std::vector<std::uint8_t> payload(size);
    for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.below(256));
    return payload;
  }

  tx::TransmitterConfig tx_config;
  ReceiverConfig rx_config;
  camera::SensorProfile profile;
};

TEST(Receiver, EmptyFrameSetYieldsEmptyReport) {
  LinkFixture fixture;
  Receiver receiver(fixture.rx_config);
  const ReceiverReport report = receiver.process({});
  EXPECT_TRUE(report.packets.empty());
  EXPECT_EQ(report.slots_observed, 0);
}

TEST(Receiver, RecoversSmallPayloadEndToEnd) {
  LinkFixture fixture;
  const auto payload = fixture.random_payload(80);
  tx::Transmission transmission;
  const auto frames = fixture.send(payload, &transmission);

  Receiver receiver(fixture.rx_config);
  const ReceiverReport report = receiver.process(frames);
  EXPECT_GE(report.calibration_packets, 1);
  EXPECT_GT(report.data_packets_ok, 0);
  // Every recovered packet matches its ground-truth message.
  std::size_t ok_index = 0;
  for (const PacketRecord& record : report.packets) {
    if (record.kind != protocol::PacketKind::kData || !record.ok) continue;
    bool found = false;
    for (const auto& truth : transmission.packet_messages) {
      if (record.payload == truth) found = true;
    }
    EXPECT_TRUE(found) << "packet " << ok_index << " does not match any message";
    ++ok_index;
  }
}

TEST(Receiver, CollectObservesMostSlots) {
  LinkFixture fixture;
  const auto payload = fixture.random_payload(30);
  tx::Transmission transmission;
  const auto frames = fixture.send(payload, &transmission);
  Receiver receiver(fixture.rx_config);
  const SlotTimeline timeline = receiver.collect(frames);
  const double observed_fraction =
      static_cast<double>(timeline.observed_count()) /
      static_cast<double>(transmission.slots.size());
  // Should observe roughly (1 - loss ratio) of all slots. Exposure
  // reach-back at frame starts and band-edge rounding recover a few
  // extra slots per gap, so the tolerance is generous upward.
  EXPECT_NEAR(observed_fraction, 1.0 - fixture.profile.inter_frame_loss_ratio, 0.10);
}

TEST(Receiver, GapErasuresAreCorrected) {
  LinkFixture fixture;
  const auto payload = fixture.random_payload(140);
  const auto frames = fixture.send(payload);
  Receiver receiver(fixture.rx_config);
  const ReceiverReport report = receiver.process(frames);
  bool saw_erasure_recovery = false;
  for (const PacketRecord& record : report.packets) {
    if (record.ok && record.corrected_erasures > 0) saw_erasure_recovery = true;
  }
  EXPECT_TRUE(saw_erasure_recovery);
}

TEST(Receiver, DataBeforeCalibrationIsDiscarded) {
  // Build a transmission whose calibration cadence is disabled, so the
  // cold receiver can never calibrate: all data packets must fail with
  // kNotCalibrated rather than decode garbage.
  LinkFixture fixture;
  fixture.tx_config.calibration_rate_hz = 0.0;

  // transmit() always prepends a white warm-up and one calibration
  // packet; strip both by re-emitting only the data slots.
  const tx::Transmitter transmitter(fixture.tx_config);
  const auto payload = fixture.random_payload(20);
  tx::Transmission transmission = transmitter.transmit(payload);
  const csk::Constellation constellation(fixture.tx_config.format.order);
  const protocol::Packetizer packetizer(fixture.tx_config.format, constellation);
  const std::size_t warmup_size =
      static_cast<std::size_t>(std::ceil(fixture.tx_config.symbol_rate_hz * 0.05));
  // Cold start sends two full cycles of the three calibration variants.
  const std::size_t calibration_size =
      warmup_size + 2 * (packetizer.build_calibration_packet().size() +
                         packetizer.build_reversed_calibration_packet().size() +
                         packetizer.build_rotated_calibration_packet().size());
  std::vector<protocol::ChannelSymbol> without_calibration(
      transmission.slots.begin() + static_cast<std::ptrdiff_t>(calibration_size),
      transmission.slots.end());
  const led::TriLed led;
  const led::EmissionTrace trace = led.emit(
      protocol::drives_of(without_calibration, constellation),
      fixture.tx_config.symbol_rate_hz);

  camera::RollingShutterCamera camera(fixture.profile, {}, 5);
  const auto frames = camera.capture_video(trace);
  Receiver receiver(fixture.rx_config);
  const ReceiverReport report = receiver.process(frames);
  EXPECT_EQ(report.data_packets_ok, 0);
  for (const PacketRecord& record : report.packets) {
    if (record.kind == protocol::PacketKind::kData) {
      EXPECT_EQ(record.failure, PacketFailure::kNotCalibrated);
    }
  }
}

TEST(Receiver, WorksAcrossAllOrders) {
  for (const csk::CskOrder order : csk::all_orders()) {
    LinkFixture fixture(order, 2000.0);
    // Enough packets that the header/gap phase sweep (a packet is sized
    // to one frame period) cannot discard every packet.
    const auto payload = fixture.random_payload(120);
    const auto frames = fixture.send(payload);
    // CSK64's packing is below the plain scan's noise floor by design —
    // it is exactly the order the equalized engine exists for, so the
    // top order decodes through it (eq::max_supported_order).
    rx::ReceiverConfig config = fixture.rx_config;
    if (order == csk::CskOrder::kCsk64) {
      config.engine.kind = eq::EngineKind::kLinearMmse;
    }
    Receiver receiver(config);
    const ReceiverReport report = receiver.process(frames);
    EXPECT_GT(report.data_packets_ok, 0) << "order " << static_cast<int>(order);
  }
}

TEST(Receiver, WorksOnBothDeviceProfiles) {
  for (const auto& profile : {camera::nexus5_profile(), camera::iphone5s_profile()}) {
    LinkFixture fixture(csk::CskOrder::kCsk8, 2000.0, profile);
    const auto payload = fixture.random_payload(120);
    const auto frames = fixture.send(payload);
    Receiver receiver(fixture.rx_config);
    const ReceiverReport report = receiver.process(frames);
    EXPECT_GT(report.data_packets_ok, 0) << profile.name;
  }
}

TEST(Receiver, CalibrationRefreshTracksExposureDrift) {
  // Later calibration packets must replace earlier references.
  LinkFixture fixture;
  const auto payload = fixture.random_payload(200);
  const auto frames = fixture.send(payload);
  Receiver receiver(fixture.rx_config);
  const ReceiverReport report = receiver.process(frames);
  EXPECT_GE(report.calibration_packets, 2);
  EXPECT_TRUE(receiver.store().calibrated());
}

TEST(Receiver, ReportAccountsForEveryDataPacketOutcome) {
  LinkFixture fixture;
  const auto payload = fixture.random_payload(80);
  const auto frames = fixture.send(payload);
  Receiver receiver(fixture.rx_config);
  const ReceiverReport report = receiver.process(frames);
  int ok = 0;
  int failed = 0;
  for (const PacketRecord& record : report.packets) {
    if (record.kind != protocol::PacketKind::kData) continue;
    record.ok ? ++ok : ++failed;
  }
  EXPECT_EQ(ok, report.data_packets_ok);
  EXPECT_EQ(failed, report.data_packets_failed);
  EXPECT_EQ(report.payload.size(),
            static_cast<std::size_t>(ok) * static_cast<std::size_t>(fixture.rx_config.rs_k));
}

}  // namespace
}  // namespace colorbars::rx
