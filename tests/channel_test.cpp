// The channel subsystem's contracts:
//  - the identity (default) ChannelSpec reproduces the pre-refactor
//    capture_video output byte for byte, at 1, 2 and 8 threads (golden
//    hashes frozen from the pre-channel build via tools/golden_capture);
//  - radiance stages (attenuation, occlusion, ambient/flicker) are pure
//    functions of time and spec;
//  - frame stages compose through the pipeline in canonical order with
//    counter-derived per-frame randomness.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "colorbars/camera/camera.hpp"
#include "colorbars/channel/channel.hpp"
#include "colorbars/channel/stages.hpp"
#include "colorbars/core/link.hpp"
#include "colorbars/csk/modulation.hpp"
#include "colorbars/led/tri_led.hpp"
#include "colorbars/pipeline/buffer_pool.hpp"
#include "colorbars/pipeline/pipeline.hpp"
#include "colorbars/protocol/symbols.hpp"
#include "colorbars/runtime/seed.hpp"
#include "colorbars/runtime/thread_pool.hpp"
#include "colorbars/simd/simd.hpp"
#include "colorbars/util/rng.hpp"

namespace colorbars {
namespace {

// ---------------------------------------------------------------------------
// Golden byte-equality: identity channel vs the pre-refactor camera.

std::uint64_t fnv1a(std::uint64_t hash, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xff;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

led::EmissionTrace golden_trace() {
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  const led::TriLed led;
  util::Xoshiro256 rng(0x901d);
  std::vector<protocol::ChannelSymbol> slots;
  for (int i = 0; i < 500; ++i) {
    slots.push_back(protocol::ChannelSymbol::data(static_cast<int>(rng.below(8))));
  }
  return led.emit(protocol::drives_of(slots, constellation), 2000.0);
}

std::uint64_t capture_hash(const camera::SensorProfile& profile,
                           const led::EmissionTrace& trace) {
  camera::RollingShutterCamera camera(profile, channel::OpticalChannel{}, 0x901d);
  const auto frames = camera.capture_video(trace, 0.004);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const auto& frame : frames) {
    hash = fnv1a(hash, static_cast<std::uint64_t>(frame.frame_index));
    hash = fnv1a(hash, static_cast<std::uint64_t>(frame.start_time_s * 1e12));
    hash = fnv1a(hash, static_cast<std::uint64_t>(frame.exposure_s * 1e12));
    hash = fnv1a(hash, static_cast<std::uint64_t>(frame.iso * 1e3));
    for (const auto& pixel : frame.pixels) {
      hash = fnv1a(hash, static_cast<std::uint64_t>(pixel.r) |
                             (static_cast<std::uint64_t>(pixel.g) << 8) |
                             (static_cast<std::uint64_t>(pixel.b) << 16));
    }
  }
  return hash;
}

TEST(Channel, IdentityChannelReproducesPreRefactorCapturesAtAllThreadCounts) {
  // Frozen from the pre-channel build (commit before this refactor) by
  // tools/golden_capture.cpp: hashes of every frame's timing, exposure
  // and pixel bytes for a 0.25 s CSK8 capture on each device profile.
  struct Golden {
    camera::SensorProfile profile;
    std::uint64_t hash;
  };
  const Golden goldens[] = {
      {camera::nexus5_profile(), 0x6e375ae069668e59ULL},
      {camera::iphone5s_profile(), 0x38a99c4aee6fc3faULL},
      {camera::ideal_profile(), 0xe6aaf81a7a6e01daULL},
  };
  const led::EmissionTrace trace = golden_trace();
  for (const unsigned threads : {1u, 2u, 8u}) {
    runtime::ThreadPool::set_shared_thread_count(threads);
    for (const Golden& golden : goldens) {
      EXPECT_EQ(capture_hash(golden.profile, trace), golden.hash)
          << golden.profile.name << " diverged from the pre-refactor capture at "
          << threads << " threads";
    }
  }
}

TEST(Channel, GoldenHashesHoldOnEverySimdBackend) {
  // The dispatched kernels promise byte-identity with the scalar
  // reference, so the frozen pre-refactor hashes must reproduce no
  // matter which backend the capture path runs on — including the
  // scalar fallback a COLORBARS_SIMD=OFF build is pinned to.
  struct Golden {
    camera::SensorProfile profile;
    std::uint64_t hash;
  };
  const Golden goldens[] = {
      {camera::nexus5_profile(), 0x6e375ae069668e59ULL},
      {camera::iphone5s_profile(), 0x38a99c4aee6fc3faULL},
      {camera::ideal_profile(), 0xe6aaf81a7a6e01daULL},
  };
  const led::EmissionTrace trace = golden_trace();
  const simd::Backend saved = simd::active_backend();
  for (const simd::Backend backend :
       {simd::Backend::kScalar, simd::Backend::kSse42, simd::Backend::kAvx2,
        simd::Backend::kNeon}) {
    if (!simd::backend_supported(backend)) continue;
    ASSERT_TRUE(simd::set_backend(backend));
    for (const Golden& golden : goldens) {
      EXPECT_EQ(capture_hash(golden.profile, trace), golden.hash)
          << golden.profile.name << " diverged on the " << simd::backend_name(backend)
          << " backend";
    }
  }
  ASSERT_TRUE(simd::set_backend(saved));
}

// ---------------------------------------------------------------------------
// Spec validation (satellite: mirror ExposureSettings::validate).

TEST(Channel, ValidateAcceptsDefaultSpec) {
  EXPECT_NO_THROW(channel::ChannelSpec{}.validate());
}

TEST(Channel, ValidateRejectsOutOfRangeParameters) {
  const auto expect_invalid = [](auto mutate) {
    channel::ChannelSpec spec;
    mutate(spec);
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    // Construction paths validate too: the optical channel, the camera
    // taking it, and the link simulator all refuse the spec.
    EXPECT_THROW((void)channel::OpticalChannel(spec), std::invalid_argument);
    core::LinkConfig config;
    config.channel = spec;
    EXPECT_THROW((void)core::LinkSimulator(config), std::invalid_argument);
  };
  expect_invalid([](auto& s) { s.distance.distance_m = 0.0; });
  expect_invalid([](auto& s) { s.distance.distance_m = -0.5; });
  expect_invalid([](auto& s) { s.distance.reference_distance_m = 0.0; });
  expect_invalid([](auto& s) { s.ambient.level = -0.001; });
  expect_invalid([](auto& s) { s.ambient.chromaticity.y = 0.0; });
  expect_invalid([](auto& s) { s.flicker.frequency_hz = -100.0; });
  expect_invalid([](auto& s) { s.flicker.modulation_depth = 1.0; });
  expect_invalid([](auto& s) { s.flicker.modulation_depth = -0.1; });
  expect_invalid([](auto& s) { s.flicker.phase_rad = std::nan(""); });
  expect_invalid([](auto& s) { s.occlusion.rate_hz = -1.0; });
  expect_invalid([](auto& s) {
    s.occlusion.rate_hz = 1.0;
    s.occlusion.mean_duration_s = 0.0;
  });
  expect_invalid([](auto& s) { s.occlusion.transmission = 1.5; });
  expect_invalid([](auto& s) { s.frame.drop_probability = 1.0; });
  expect_invalid([](auto& s) { s.frame.drop_probability = -0.2; });
  expect_invalid([](auto& s) { s.frame.gain_wobble_sigma = 0.7; });
  expect_invalid([](auto& s) { s.distance.distance_m = std::nan(""); });
}

// ---------------------------------------------------------------------------
// Radiance-domain stages.

TEST(Channel, DistanceAttenuationIsInverseSquare) {
  channel::ChannelSpec spec;
  EXPECT_EQ(channel::OpticalChannel(spec).attenuation_gain(), 1.0);  // exact

  spec.distance.distance_m = 0.06;  // 2x the 3 cm reference
  EXPECT_DOUBLE_EQ(channel::OpticalChannel(spec).attenuation_gain(), 0.25);

  spec.distance.distance_m = 0.5;
  spec.distance.reference_distance_m = 0.25;  // larger emitter
  EXPECT_DOUBLE_EQ(channel::OpticalChannel(spec).attenuation_gain(), 0.25);

  // Without occlusion, signal_gain is the attenuation for any window.
  const channel::OpticalChannel optics(spec);
  EXPECT_EQ(optics.signal_gain(0.0, 0.001), optics.attenuation_gain());
}

TEST(Channel, OcclusionBurstsGateTheSignalDeterministically) {
  channel::ChannelSpec spec;
  spec.occlusion.rate_hz = 4.0;
  spec.occlusion.mean_duration_s = 0.05;
  spec.occlusion.transmission = 0.0;
  const channel::OpticalChannel optics(spec, 42);

  // Long-window mean ≈ 1 - duty cycle (rate * mean duration = 0.2).
  const double long_mean = optics.occlusion_gain(0.0, 50.0);
  EXPECT_GT(long_mean, 0.65);
  EXPECT_LT(long_mean, 0.95);

  // Fine windows actually hit bursts: the minimum gain over row-sized
  // windows is well below 1 and some windows are untouched.
  double lowest = 1.0;
  double highest = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double t = i * 1e-3;
    const double g = optics.occlusion_gain(t, t + 1e-3);
    lowest = std::min(lowest, g);
    highest = std::max(highest, g);
  }
  EXPECT_LT(lowest, 0.5);
  EXPECT_EQ(highest, 1.0);

  // Pure function of (seed, time): a second instance agrees everywhere,
  // a different seed disagrees somewhere.
  const channel::OpticalChannel twin(spec, 42);
  const channel::OpticalChannel other(spec, 43);
  bool seed_matters = false;
  for (int i = 0; i < 1000; ++i) {
    const double t = i * 5e-3;
    ASSERT_EQ(optics.occlusion_gain(t, t + 1e-3), twin.occlusion_gain(t, t + 1e-3));
    seed_matters |=
        optics.occlusion_gain(t, t + 1e-3) != other.occlusion_gain(t, t + 1e-3);
  }
  EXPECT_TRUE(seed_matters);

  // Partial transmission bounds the gain from below.
  spec.occlusion.transmission = 0.3;
  const channel::OpticalChannel translucent(spec, 42);
  for (int i = 0; i < 1000; ++i) {
    const double t = i * 5e-3;
    EXPECT_GE(translucent.occlusion_gain(t, t + 1e-3), 0.3);
  }
}

TEST(Channel, AmbientIlluminantIsConfigurable) {
  channel::ChannelSpec spec;
  spec.ambient.chromaticity = {0.44757, 0.40745};  // illuminant A
  spec.ambient.level = 0.02;
  const channel::OpticalChannel optics(spec);
  EXPECT_TRUE(optics.ambient_is_constant());
  const util::Vec3 expected =
      color::xyy_to_xyz(spec.ambient.chromaticity, spec.ambient.level);
  EXPECT_EQ(optics.constant_ambient_xyz().x, expected.x);
  EXPECT_EQ(optics.constant_ambient_xyz().y, expected.y);
  EXPECT_EQ(optics.constant_ambient_xyz().z, expected.z);
  // The windowed query matches the constant when no flicker is set.
  EXPECT_EQ(optics.ambient_xyz(0.1, 0.2).y, expected.y);
}

TEST(Channel, AmbientFlickerAveragesExactlyOverTheExposureWindow) {
  channel::ChannelSpec spec;
  spec.flicker.frequency_hz = 100.0;  // 50 Hz mains ripple
  spec.flicker.modulation_depth = 0.5;
  const channel::OpticalChannel optics(spec);
  EXPECT_FALSE(optics.ambient_is_constant());

  const double base = optics.constant_ambient_xyz().y;
  // A window spanning exactly one ripple period integrates to the base.
  EXPECT_NEAR(optics.ambient_xyz(0.0, 0.01).y, base, base * 1e-9);
  EXPECT_NEAR(optics.ambient_xyz(0.123, 0.133).y, base, base * 1e-9);
  // A quarter-period window starting at the crest reads above base; the
  // opposite phase reads below. depth < 1 keeps both positive.
  const double crest = optics.ambient_xyz(0.0, 0.0025).y;
  const double trough = optics.ambient_xyz(0.005, 0.0075).y;
  EXPECT_GT(crest, base * 1.2);
  EXPECT_LT(trough, base * 0.8);
  EXPECT_GT(trough, 0.0);
}

TEST(Channel, NonIdentityChannelChangesTheCapture) {
  const led::TriLed led;
  led::EmissionTrace trace;
  trace.append(0.1, led.radiance(csk::white_drive()));

  // A short manual exposure keeps the white LED well below saturation,
  // so channel differences survive into the 8-bit pixels.
  const auto frame_with = [&](const channel::ChannelSpec& spec) {
    camera::RollingShutterCamera camera(camera::ideal_profile(),
                                        channel::OpticalChannel(spec, 7), 11);
    camera.set_manual_exposure({1.0 / 50000.0, 100.0});
    return camera.capture_frame(trace, 0.05);
  };

  const camera::Frame identity = frame_with({});
  channel::ChannelSpec far;
  far.distance.distance_m = 0.12;
  channel::ChannelSpec lit;
  lit.ambient.level = 0.2;
  channel::ChannelSpec flickering;
  flickering.ambient.level = 0.2;
  flickering.flicker.frequency_hz = 120.0;
  flickering.flicker.modulation_depth = 0.8;

  EXPECT_NE(identity.pixels, frame_with(far).pixels);
  EXPECT_NE(identity.pixels, frame_with(lit).pixels);
  EXPECT_NE(frame_with(lit).pixels, frame_with(flickering).pixels);
  // Same spec, same seeds: bitwise repeatable.
  EXPECT_EQ(frame_with(far).pixels, frame_with(far).pixels);
}

// ---------------------------------------------------------------------------
// Frame-domain stages and their composition through the pipeline.

TEST(ChannelStages, FrameDropIsSeededPerFrameIndex) {
  camera::Frame frame;
  channel::FrameDropStage stage(0.5, 0xd70b);
  std::vector<bool> kept;
  for (int i = 0; i < 1000; ++i) {
    frame.frame_index = i;
    kept.push_back(stage.process(frame));
  }
  const long long dropped = stage.dropped();
  EXPECT_GT(dropped, 350);
  EXPECT_LT(dropped, 650);

  // A fresh stage with the same seed makes the identical decisions, in
  // any evaluation order — the draw is a pure function of frame_index.
  channel::FrameDropStage replay(0.5, 0xd70b);
  for (int i = 999; i >= 0; --i) {
    frame.frame_index = i;
    EXPECT_EQ(replay.process(frame), kept[static_cast<std::size_t>(i)]) << i;
  }
  EXPECT_THROW((void)channel::FrameDropStage(1.0, 1), std::invalid_argument);
}

TEST(ChannelStages, GainWobbleScalesPixelsByThePerFrameGain) {
  channel::GainWobbleStage stage(0.3, 0xa0b1);
  bool some_gain_off_unity = false;
  for (int i = 0; i < 16; ++i) {
    const double gain = stage.gain_for(i);
    EXPECT_GE(gain, 0.5);
    EXPECT_LE(gain, 1.5);
    some_gain_off_unity |= gain != 1.0;

    camera::Frame frame;
    frame.resize(2, 2);
    frame.frame_index = i;
    for (auto& pixel : frame.pixels) pixel = {10, 100, 200};
    ASSERT_TRUE(stage.process(frame));
    for (const auto& pixel : frame.pixels) {
      EXPECT_EQ(pixel.g, static_cast<std::uint8_t>(std::clamp(
                             static_cast<double>(std::lround(100.0 * gain)), 0.0, 255.0)));
    }
  }
  EXPECT_TRUE(some_gain_off_unity);
  EXPECT_THROW((void)channel::GainWobbleStage(-0.1, 1), std::invalid_argument);
}

TEST(ChannelStages, StageChainIsEmptyForIdentitySpec) {
  const channel::StageChain chain(channel::ChannelSpec{}, 99);
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.stages().size(), 0u);
}

/// Sink capturing frame copies in arrival order.
class CollectSink final : public pipeline::FrameSink {
 public:
  void consume(const camera::Frame& frame) override { frames.push_back(frame); }
  std::vector<camera::Frame> frames;
};

TEST(ChannelStages, ChainComposesDropBeforeWobbleThroughThePipeline) {
  const led::TriLed led;
  led::EmissionTrace trace;
  trace.append(0.5, led.radiance(csk::white_drive()));

  channel::ChannelSpec spec;
  spec.frame.drop_probability = 0.4;
  spec.frame.gain_wobble_sigma = 0.25;
  const std::uint64_t chain_seed = 0xc0ffee;

  // Path A: the chain, composed through run_pipeline.
  camera::RollingShutterCamera streamed(camera::ideal_profile(),
                                        channel::OpticalChannel{}, 0xcab);
  pipeline::BufferPool pool;
  pipeline::FrameSource source(streamed, trace, pool, {});
  const channel::StageChain chain(spec, chain_seed);
  ASSERT_EQ(chain.stages().size(), 2u);
  CollectSink sink;
  const pipeline::PipelineStats stats =
      pipeline::run_pipeline(source, chain.stages(), sink);

  // Path B: the same stages applied by hand, in canonical order (drop
  // decides first; a dropped frame is never wobbled), to the
  // byte-identical materialized capture.
  camera::RollingShutterCamera buffered(camera::ideal_profile(),
                                        channel::OpticalChannel{}, 0xcab);
  std::vector<camera::Frame> expected = buffered.capture_video(trace);
  const std::size_t total = expected.size();
  channel::FrameDropStage drop(spec.frame.drop_probability,
                               runtime::derive_stream_seed(chain_seed, 1));
  channel::GainWobbleStage wobble(spec.frame.gain_wobble_sigma,
                                  runtime::derive_stream_seed(chain_seed, 2));
  std::erase_if(expected, [&](camera::Frame& frame) {
    if (!drop.process(frame)) return true;
    EXPECT_TRUE(wobble.process(frame));
    return false;
  });

  ASSERT_GT(total, 0u);
  ASSERT_LT(sink.frames.size(), total) << "expected some drops at p=0.4";
  ASSERT_EQ(sink.frames.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(sink.frames[i].frame_index, expected[i].frame_index);
    EXPECT_EQ(sink.frames[i].pixels, expected[i].pixels) << "frame " << i;
  }
  EXPECT_EQ(stats.frames_dropped, static_cast<long long>(total - expected.size()));
  EXPECT_EQ(stats.frames_streamed, static_cast<long long>(expected.size()));
}

}  // namespace
}  // namespace colorbars
