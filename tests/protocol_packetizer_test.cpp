#include "colorbars/protocol/packetizer.hpp"

#include <gtest/gtest.h>

#include "colorbars/util/rng.hpp"

namespace colorbars::protocol {
namespace {

class PacketizerAllOrders : public ::testing::TestWithParam<csk::CskOrder> {
 protected:
  FrameFormat format_{GetParam(), 0.8};
  csk::Constellation constellation_{GetParam()};
  Packetizer packetizer_{format_, constellation_};
};

TEST_P(PacketizerAllOrders, DataPacketStartsWithDelimiterAndFlag) {
  const std::vector<std::uint8_t> payload(16, 0xab);
  const auto packet = packetizer_.build_data_packet(payload);
  const auto& delimiter = delimiter_sequence();
  const auto& flag = data_flag_sequence();
  ASSERT_GE(packet.size(), delimiter.size() + flag.size());
  for (std::size_t i = 0; i < delimiter.size(); ++i) EXPECT_EQ(packet[i], delimiter[i]);
  for (std::size_t i = 0; i < flag.size(); ++i) {
    EXPECT_EQ(packet[delimiter.size() + i], flag[i]);
  }
}

TEST_P(PacketizerAllOrders, SizeFieldEncodesPayloadSymbolCount) {
  const std::vector<std::uint8_t> payload(20, 0x5c);
  const auto packet = packetizer_.build_data_packet(payload);
  const std::size_t header = delimiter_sequence().size() + data_flag_sequence().size();
  const int size_symbols = size_field_symbols(format_.order);
  const std::vector<ChannelSymbol> field(
      packet.begin() + static_cast<std::ptrdiff_t>(header),
      packet.begin() + static_cast<std::ptrdiff_t>(header) + size_symbols);
  const auto decoded = decode_size_field(field, format_.order);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, packetizer_.symbols_for_bytes(20));
}

TEST_P(PacketizerAllOrders, PayloadRoundTripsThroughPacket) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(format_.order));
  std::vector<std::uint8_t> payload(24);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.below(256));

  const auto packet = packetizer_.build_data_packet(payload);
  const std::size_t header = delimiter_sequence().size() + data_flag_sequence().size() +
                             static_cast<std::size_t>(size_field_symbols(format_.order));
  const std::vector<ChannelSymbol> payload_slots(
      packet.begin() + static_cast<std::ptrdiff_t>(header), packet.end());
  const auto data_symbols = packetizer_.schedule().strip_white(payload_slots);

  std::vector<int> indices;
  for (const auto& symbol : data_symbols) {
    ASSERT_EQ(symbol.kind, SymbolKind::kData);
    indices.push_back(symbol.data_index);
  }
  const auto bytes = packetizer_.mapper().unmap_symbols(indices, payload.size());
  EXPECT_EQ(bytes, payload);
}

TEST_P(PacketizerAllOrders, PacketSlotCountMatchesPrediction) {
  const std::vector<std::uint8_t> payload(32, 0x11);
  const auto packet = packetizer_.build_data_packet(payload);
  EXPECT_EQ(static_cast<int>(packet.size()), packetizer_.data_packet_slots(32));
}

TEST_P(PacketizerAllOrders, CalibrationPacketListsAllSymbolsInOrder) {
  const auto packet = packetizer_.build_calibration_packet();
  const std::size_t header =
      delimiter_sequence().size() + calibration_flag_sequence().size();
  ASSERT_EQ(packet.size(), header + static_cast<std::size_t>(constellation_.size()));
  for (int i = 0; i < constellation_.size(); ++i) {
    const ChannelSymbol& symbol = packet[header + static_cast<std::size_t>(i)];
    EXPECT_EQ(symbol.kind, SymbolKind::kData);
    EXPECT_EQ(symbol.data_index, i);
  }
}

TEST_P(PacketizerAllOrders, PayloadContainsNoOffSymbols) {
  // OFF must remain exclusive to delimiters/flags or packet parsing
  // would find false markers inside payloads.
  const std::vector<std::uint8_t> payload(64, 0x00);  // all zeros is the risky case
  const auto packet = packetizer_.build_data_packet(payload);
  const std::size_t header = delimiter_sequence().size() + data_flag_sequence().size();
  for (std::size_t i = header; i < packet.size(); ++i) {
    EXPECT_NE(packet[i].kind, SymbolKind::kOff) << "slot " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, PacketizerAllOrders,
                         ::testing::Values(csk::CskOrder::kCsk4, csk::CskOrder::kCsk8,
                                           csk::CskOrder::kCsk16, csk::CskOrder::kCsk32),
                         [](const auto& info) {
                           return "Csk" + std::to_string(static_cast<int>(info.param));
                         });

TEST(Packetizer, EmptyPayloadStillHasHeader) {
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  const Packetizer packetizer({csk::CskOrder::kCsk8, 0.8}, constellation);
  const auto packet = packetizer.build_data_packet({});
  const std::size_t expected = delimiter_sequence().size() + data_flag_sequence().size() +
                               static_cast<std::size_t>(size_field_symbols(
                                   csk::CskOrder::kCsk8));
  EXPECT_EQ(packet.size(), expected);
}

}  // namespace
}  // namespace colorbars::protocol
