#include "colorbars/rx/roi_tracker.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace colorbars::rx {
namespace {

/// A dark frame (ambient surround only).
camera::Frame make_frame(int rows = 240, int columns = 64) {
  camera::Frame frame;
  frame.resize(rows, columns);
  std::fill(frame.pixels.begin(), frame.pixels.end(), color::Rgb8{6, 6, 6});
  return frame;
}

/// Paints a luminaire strip: saturated colors cycling every `band_rows`
/// rows — the rolling-shutter signature the detector keys on.
void paint_strip(camera::Frame& frame, int left, int width, int band_rows = 8) {
  static constexpr color::Rgb8 kPalette[4] = {
      {230, 40, 40}, {40, 230, 40}, {70, 70, 235}, {230, 230, 40}};
  for (int r = 0; r < frame.rows; ++r) {
    const color::Rgb8& color = kPalette[(r / band_rows) % 4];
    for (int c = left; c < left + width; ++c) frame.at(r, c) = color;
  }
}

/// Paints a bright but chroma-static patch (a lamp, a white wall).
void paint_static_patch(camera::Frame& frame, int left, int width) {
  for (int r = 0; r < frame.rows; ++r) {
    for (int c = left; c < left + width; ++c) frame.at(r, c) = {225, 225, 225};
  }
}

TEST(SceneTracker, ConfigValidation) {
  EXPECT_THROW(RoiTracker({.cell_rows = 0}), std::invalid_argument);
  EXPECT_THROW(RoiTracker({.cell_columns = -1}), std::invalid_argument);
  EXPECT_THROW(RoiTracker({.min_active_fraction = 0.0}), std::invalid_argument);
  EXPECT_THROW(RoiTracker({.min_active_fraction = 1.5}), std::invalid_argument);
  EXPECT_THROW(RoiTracker({.retire_after_frames = 0}), std::invalid_argument);
  EXPECT_NO_THROW(RoiTracker{});
}

TEST(SceneTracker, EmptyFrameYieldsNoDetections) {
  const camera::Frame frame;  // zero-sized
  EXPECT_TRUE(RoiTracker::detect(frame, {}).empty());
  RoiTracker tracker;
  EXPECT_TRUE(tracker.update(frame).empty());
}

TEST(SceneTracker, DarkFrameYieldsNoDetections) {
  const camera::Frame frame = make_frame();
  EXPECT_TRUE(RoiTracker::detect(frame, {}).empty());
}

TEST(SceneTracker, DetectsSingleStrip) {
  camera::Frame frame = make_frame();
  paint_strip(frame, 16, 16);
  const auto regions = RoiTracker::detect(frame, {});
  ASSERT_EQ(regions.size(), 1u);
  // The detected rectangle covers the strip (cell-quantized bounds may
  // extend slightly, never shrink past a cell).
  EXPECT_LE(regions[0].left, 16);
  EXPECT_GE(regions[0].column_end(), 32);
  EXPECT_LE(regions[0].top, 8);
  EXPECT_GE(regions[0].row_end(), frame.rows - 8);
  EXPECT_TRUE(regions[0].within(frame.rows, frame.columns));
}

TEST(SceneTracker, DetectsTwoStripsLeftToRight) {
  camera::Frame frame = make_frame();
  paint_strip(frame, 8, 16);
  paint_strip(frame, 40, 16, /*band_rows=*/6);
  const auto regions = RoiTracker::detect(frame, {});
  ASSERT_EQ(regions.size(), 2u);
  EXPECT_LT(regions[0].left, regions[1].left);
  EXPECT_EQ(regions[0].column_overlap(regions[1]), 0);
  EXPECT_GE(regions[0].column_overlap({.left = 8, .width = 16}), 12);
  EXPECT_GE(regions[1].column_overlap({.left = 40, .width = 16}), 12);
}

TEST(SceneTracker, IgnoresBrightStaticBackground) {
  camera::Frame frame = make_frame();
  paint_static_patch(frame, 4, 20);  // bright, but no chroma cycling
  paint_strip(frame, 40, 16);
  const auto regions = RoiTracker::detect(frame, {});
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_GE(regions[0].left, 36);
}

TEST(SceneTracker, TracksPersistAcrossFrames) {
  camera::Frame frame = make_frame();
  paint_strip(frame, 16, 16);
  RoiTracker tracker;
  for (int i = 0; i < 3; ++i) {
    const auto& tracks = tracker.update(frame);
    ASSERT_EQ(tracks.size(), 1u);
    EXPECT_EQ(tracks[0].id, 0);
    EXPECT_EQ(tracks[0].frames_seen, i + 1);
    EXPECT_EQ(tracks[0].frames_since_seen, 0);
  }
  EXPECT_EQ(tracker.tracks_opened(), 1);
}

TEST(SceneTracker, TrackFollowsDriftingStrip) {
  RoiTracker tracker;
  for (int shift = 0; shift <= 8; shift += 4) {
    camera::Frame frame = make_frame();
    paint_strip(frame, 16 + shift, 16);
    const auto& tracks = tracker.update(frame);
    ASSERT_EQ(tracks.size(), 1u);
    EXPECT_EQ(tracks[0].id, 0) << "drift must not spawn a new track";
  }
  EXPECT_EQ(tracker.tracks_opened(), 1);
}

TEST(SceneTracker, RetiresUnseenTracksAndNeverReusesIds) {
  RoiTrackerConfig config;
  config.retire_after_frames = 2;
  RoiTracker tracker(config);

  camera::Frame lit = make_frame();
  paint_strip(lit, 16, 16);
  (void)tracker.update(lit);
  ASSERT_EQ(tracker.tracks().size(), 1u);

  const camera::Frame dark = make_frame();
  (void)tracker.update(dark);
  (void)tracker.update(dark);
  // Within the retire horizon the track survives (a dropped frame or a
  // brief occlusion must not sever the decode lane).
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].frames_since_seen, 2);
  (void)tracker.update(dark);
  EXPECT_TRUE(tracker.tracks().empty());

  // A luminaire reappearing after retirement opens a fresh track: IDs
  // are never reused.
  (void)tracker.update(lit);
  ASSERT_EQ(tracker.tracks().size(), 1u);
  EXPECT_EQ(tracker.tracks()[0].id, 1);
  EXPECT_EQ(tracker.tracks_opened(), 2);
}

TEST(SceneTracker, TwoTracksKeepIdentityWhenOneVanishes) {
  RoiTracker tracker;
  camera::Frame both = make_frame();
  paint_strip(both, 8, 16);
  paint_strip(both, 40, 16);
  (void)tracker.update(both);
  ASSERT_EQ(tracker.tracks().size(), 2u);

  camera::Frame right_only = make_frame();
  paint_strip(right_only, 40, 16);
  const auto& tracks = tracker.update(right_only);
  ASSERT_EQ(tracks.size(), 2u);  // left track coasts within the horizon
  EXPECT_EQ(tracks[0].frames_since_seen, 1);
  EXPECT_EQ(tracks[1].frames_since_seen, 0);
  EXPECT_EQ(tracks[1].id, 1);
  EXPECT_GE(tracks[1].region.left, 36);
}

}  // namespace
}  // namespace colorbars::rx
