#include "colorbars/util/bitio.hpp"

#include <gtest/gtest.h>

#include "colorbars/util/rng.hpp"

namespace colorbars::util {
namespace {

TEST(BitWriter, PacksMsbFirst) {
  BitWriter writer;
  writer.write(0b101, 3);
  writer.write(0b11011, 5);
  ASSERT_EQ(writer.bytes().size(), 1u);
  EXPECT_EQ(writer.bytes()[0], 0b10111011);
}

TEST(BitWriter, PadsFinalByteWithZeros) {
  BitWriter writer;
  writer.write(0b11, 2);
  EXPECT_EQ(writer.bit_count(), 2u);
  ASSERT_EQ(writer.bytes().size(), 1u);
  EXPECT_EQ(writer.bytes()[0], 0b11000000);
}

TEST(BitWriter, AlignToByteIsIdempotent) {
  BitWriter writer;
  writer.write(1, 1);
  writer.align_to_byte();
  EXPECT_EQ(writer.bit_count(), 8u);
  writer.align_to_byte();
  EXPECT_EQ(writer.bit_count(), 8u);
}

TEST(BitWriter, WriteBytesMatchesByteLoop) {
  const std::vector<std::uint8_t> data{0xde, 0xad, 0xbe, 0xef};
  BitWriter writer;
  writer.write_bytes(data);
  EXPECT_EQ(writer.bytes(), data);
}

TEST(BitReader, ReadsBackWhatWasWritten) {
  BitWriter writer;
  writer.write(0x3, 2);
  writer.write(0x1f, 5);
  writer.write(0xabc, 12);
  const auto bytes = writer.bytes();
  BitReader reader(bytes);
  EXPECT_EQ(reader.read(2), 0x3u);
  EXPECT_EQ(reader.read(5), 0x1fu);
  EXPECT_EQ(reader.read(12), 0xabcu);
  EXPECT_FALSE(reader.overrun());
}

TEST(BitReader, OverrunReadsZeroAndSetsFlag) {
  const std::vector<std::uint8_t> bytes{0xff};
  BitReader reader(bytes);
  EXPECT_EQ(reader.read(8), 0xffu);
  EXPECT_EQ(reader.read(4), 0u);
  EXPECT_TRUE(reader.overrun());
}

TEST(BitReader, RemainingCountsDown) {
  const std::vector<std::uint8_t> bytes{0x00, 0x00};
  BitReader reader(bytes);
  EXPECT_EQ(reader.remaining(), 16u);
  (void)reader.read(5);
  EXPECT_EQ(reader.remaining(), 11u);
}

class SplitJoinRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SplitJoinRoundTrip, RecoversOriginalBytes) {
  const int bits = GetParam();
  Xoshiro256 rng(100 + static_cast<std::uint64_t>(bits));
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::uint8_t> data(1 + rng.below(64));
    for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.below(256));
    const auto chunks = split_bits(data, bits);
    const auto restored = join_bits(chunks, bits, data.size());
    EXPECT_EQ(restored, data) << "bits=" << bits << " size=" << data.size();
  }
}

INSTANTIATE_TEST_SUITE_P(AllCskWidths, SplitJoinRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12));

TEST(SplitBits, ChunkCountCoversAllBits) {
  const std::vector<std::uint8_t> data{0xff, 0xff};  // 16 bits
  EXPECT_EQ(split_bits(data, 3).size(), 6u);         // ceil(16/3)
  EXPECT_EQ(split_bits(data, 4).size(), 4u);
  EXPECT_EQ(split_bits(data, 5).size(), 4u);
}

TEST(SplitBits, FinalChunkIsZeroPadded) {
  const std::vector<std::uint8_t> data{0xff};  // 8 bits
  const auto chunks = split_bits(data, 5);
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0], 0b11111u);
  EXPECT_EQ(chunks[1], 0b11100u);  // 3 real bits, 2 pad zeros
}

TEST(SplitBits, ValuesFitChunkWidth) {
  Xoshiro256 rng(4242);
  std::vector<std::uint8_t> data(128);
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.below(256));
  for (const int bits : {2, 3, 4, 5}) {
    for (const auto chunk : split_bits(data, bits)) {
      EXPECT_LT(chunk, 1u << bits);
    }
  }
}

}  // namespace
}  // namespace colorbars::util
