#include "colorbars/protocol/packet.hpp"

#include <gtest/gtest.h>

namespace colorbars::protocol {
namespace {

TEST(Packet, DelimiterIsOwo) {
  const auto& delimiter = delimiter_sequence();
  ASSERT_EQ(delimiter.size(), 3u);
  EXPECT_EQ(delimiter[0].kind, SymbolKind::kOff);
  EXPECT_EQ(delimiter[1].kind, SymbolKind::kWhite);
  EXPECT_EQ(delimiter[2].kind, SymbolKind::kOff);
}

TEST(Packet, DataFlagIsOwowo) {
  const auto& flag = data_flag_sequence();
  ASSERT_EQ(flag.size(), 5u);
  for (std::size_t i = 0; i < flag.size(); ++i) {
    EXPECT_EQ(flag[i].kind, i % 2 == 0 ? SymbolKind::kOff : SymbolKind::kWhite);
  }
}

TEST(Packet, CalibrationFlagIsOwowowo) {
  const auto& flag = calibration_flag_sequence();
  ASSERT_EQ(flag.size(), 7u);
  for (std::size_t i = 0; i < flag.size(); ++i) {
    EXPECT_EQ(flag[i].kind, i % 2 == 0 ? SymbolKind::kOff : SymbolKind::kWhite);
  }
}

TEST(Packet, DataFlagIsPrefixOfCalibrationFlag) {
  // The receiver disambiguates by matching the longer pattern first;
  // this only works because of this structural property.
  const auto& data = data_flag_sequence();
  const auto& calibration = calibration_flag_sequence();
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], calibration[i]);
  }
}

TEST(Packet, SizeFieldSymbolCountCoversTwelveBits) {
  EXPECT_EQ(size_field_symbols(csk::CskOrder::kCsk4), 6);   // 2 bits each
  EXPECT_EQ(size_field_symbols(csk::CskOrder::kCsk8), 4);   // 3 bits each
  EXPECT_EQ(size_field_symbols(csk::CskOrder::kCsk16), 3);  // paper's 3 symbols
  EXPECT_EQ(size_field_symbols(csk::CskOrder::kCsk32), 3);
}

class SizeFieldRoundTrip : public ::testing::TestWithParam<csk::CskOrder> {};

TEST_P(SizeFieldRoundTrip, EncodesAndDecodesAllValues) {
  const csk::CskOrder order = GetParam();
  for (int value : {0, 1, 7, 54, 133, 500, 1000, 4095}) {
    const auto field = encode_size_field(value, order);
    EXPECT_EQ(static_cast<int>(field.size()), size_field_symbols(order));
    for (const auto& symbol : field) {
      EXPECT_EQ(symbol.kind, SymbolKind::kData);
      EXPECT_LT(symbol.data_index, csk::symbol_count(order));
    }
    const auto decoded = decode_size_field(field, order);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, SizeFieldRoundTrip,
                         ::testing::Values(csk::CskOrder::kCsk4, csk::CskOrder::kCsk8,
                                           csk::CskOrder::kCsk16, csk::CskOrder::kCsk32),
                         [](const auto& info) {
                           return "Csk" + std::to_string(static_cast<int>(info.param));
                         });

TEST(SizeField, ClampsOverflowingValues) {
  const auto field = encode_size_field(100000, csk::CskOrder::kCsk8);
  const auto decoded = decode_size_field(field, csk::CskOrder::kCsk8);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, 4095);
}

TEST(SizeField, RejectsNonDataSymbols) {
  auto field = encode_size_field(42, csk::CskOrder::kCsk8);
  field[1] = ChannelSymbol::white();
  EXPECT_FALSE(decode_size_field(field, csk::CskOrder::kCsk8).has_value());
}

TEST(SizeField, RejectsWrongLength) {
  auto field = encode_size_field(42, csk::CskOrder::kCsk8);
  field.pop_back();
  EXPECT_FALSE(decode_size_field(field, csk::CskOrder::kCsk8).has_value());
}

TEST(ChannelSymbol, FactoryHelpers) {
  EXPECT_EQ(ChannelSymbol::off().kind, SymbolKind::kOff);
  EXPECT_EQ(ChannelSymbol::white().kind, SymbolKind::kWhite);
  const ChannelSymbol data = ChannelSymbol::data(5);
  EXPECT_EQ(data.kind, SymbolKind::kData);
  EXPECT_EQ(data.data_index, 5);
}

TEST(ChannelSymbol, DriveConversion) {
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  EXPECT_EQ(drive_of(ChannelSymbol::off(), constellation), csk::off_drive());
  EXPECT_EQ(drive_of(ChannelSymbol::white(), constellation), csk::white_drive());
  const csk::LedDrive drive = drive_of(ChannelSymbol::data(0), constellation);
  EXPECT_NEAR(drive.total(), 1.0, 1e-9);
}

}  // namespace
}  // namespace colorbars::protocol
