#include "colorbars/csk/mapper.hpp"

#include <gtest/gtest.h>

#include <set>

#include "colorbars/util/rng.hpp"

namespace colorbars::csk {
namespace {

class MapperAllOrders : public ::testing::TestWithParam<CskOrder> {
 protected:
  Constellation constellation_{GetParam()};
  SymbolMapper mapper_{constellation_};
};

TEST_P(MapperAllOrders, LabelingIsABijection) {
  std::set<std::uint32_t> labels;
  std::set<int> symbols;
  for (int i = 0; i < mapper_.symbol_count(); ++i) {
    labels.insert(mapper_.label(i));
    symbols.insert(mapper_.symbol(mapper_.label(i)));
  }
  EXPECT_EQ(labels.size(), static_cast<std::size_t>(mapper_.symbol_count()));
  EXPECT_EQ(symbols.size(), static_cast<std::size_t>(mapper_.symbol_count()));
}

TEST_P(MapperAllOrders, LabelSymbolInverses) {
  for (int i = 0; i < mapper_.symbol_count(); ++i) {
    EXPECT_EQ(mapper_.symbol(mapper_.label(i)), i);
  }
  for (std::uint32_t label = 0;
       label < static_cast<std::uint32_t>(mapper_.symbol_count()); ++label) {
    EXPECT_EQ(mapper_.label(mapper_.symbol(label)), label);
  }
}

TEST_P(MapperAllOrders, LabelsFitBitWidth) {
  for (int i = 0; i < mapper_.symbol_count(); ++i) {
    EXPECT_LT(mapper_.label(i), 1u << mapper_.bits());
  }
}

TEST_P(MapperAllOrders, MapUnmapRoundTripsBytes) {
  util::Xoshiro256 rng(static_cast<std::uint64_t>(mapper_.symbol_count()) * 7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::uint8_t> data(1 + rng.below(100));
    for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.below(256));
    const std::vector<int> symbols = mapper_.map_bytes(data);
    const std::vector<std::uint8_t> back = mapper_.unmap_symbols(symbols, data.size());
    EXPECT_EQ(back, data);
  }
}

TEST_P(MapperAllOrders, SymbolCountMatchesBitMath) {
  const std::vector<std::uint8_t> data(30, 0xa5);  // 240 bits
  const std::vector<int> symbols = mapper_.map_bytes(data);
  const std::size_t expected =
      (240 + static_cast<std::size_t>(mapper_.bits()) - 1) /
      static_cast<std::size_t>(mapper_.bits());
  EXPECT_EQ(symbols.size(), expected);
}

TEST_P(MapperAllOrders, GrayLabelingKeepsNeighborsClose) {
  // A good labeling puts spatially nearest neighbors within ~1-2 bits;
  // a random labeling averages bits/2 per neighbor.
  const double mean_hamming = mapper_.mean_neighbor_hamming(constellation_);
  EXPECT_LE(mean_hamming, 2.0) << "order " << static_cast<int>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Orders, MapperAllOrders,
                         ::testing::Values(CskOrder::kCsk4, CskOrder::kCsk8,
                                           CskOrder::kCsk16, CskOrder::kCsk32),
                         [](const auto& info) {
                           return "Csk" + std::to_string(static_cast<int>(info.param));
                         });

TEST(GrayCode, AdjacentCodesDifferInOneBit) {
  for (std::uint32_t n = 0; n < 63; ++n) {
    EXPECT_EQ(hamming(gray_code(n), gray_code(n + 1)), 1);
  }
}

TEST(GrayCode, IsBijectiveOver5Bits) {
  std::set<std::uint32_t> seen;
  for (std::uint32_t n = 0; n < 32; ++n) seen.insert(gray_code(n));
  EXPECT_EQ(seen.size(), 32u);
  for (const std::uint32_t code : seen) EXPECT_LT(code, 32u);
}

TEST(Hamming, CountsBitDifferences) {
  EXPECT_EQ(hamming(0b0000, 0b0000), 0);
  EXPECT_EQ(hamming(0b1010, 0b0101), 4);
  EXPECT_EQ(hamming(0b111, 0b110), 1);
}

}  // namespace
}  // namespace colorbars::csk
