#include "colorbars/led/emission.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "colorbars/util/rng.hpp"

namespace colorbars::led {
namespace {

TEST(EmissionTrace, EmptyTraceIsDark) {
  const EmissionTrace trace;
  EXPECT_DOUBLE_EQ(trace.duration(), 0.0);
  EXPECT_EQ(trace.sample(0.5), Vec3());
  EXPECT_EQ(trace.average(0.0, 1.0), Vec3());
}

TEST(EmissionTrace, IgnoresNonPositiveDurations) {
  EmissionTrace trace;
  trace.append(0.0, {1, 1, 1});
  trace.append(-1.0, {1, 1, 1});
  EXPECT_EQ(trace.segment_count(), 0u);
}

TEST(EmissionTrace, SampleReturnsSegmentValue) {
  EmissionTrace trace;
  trace.append(1.0, {1, 0, 0});
  trace.append(1.0, {0, 1, 0});
  trace.append(1.0, {0, 0, 1});
  EXPECT_EQ(trace.sample(0.5), Vec3(1, 0, 0));
  EXPECT_EQ(trace.sample(1.5), Vec3(0, 1, 0));
  EXPECT_EQ(trace.sample(2.5), Vec3(0, 0, 1));
}

TEST(EmissionTrace, SampleClampsToEnds) {
  EmissionTrace trace;
  trace.append(1.0, {0.2, 0.3, 0.4});
  EXPECT_EQ(trace.sample(-5.0), Vec3(0.2, 0.3, 0.4));
  EXPECT_EQ(trace.sample(5.0), Vec3(0.2, 0.3, 0.4));
}

TEST(EmissionTrace, AverageOfUniformTraceIsItsValue) {
  EmissionTrace trace;
  trace.append(2.0, {0.5, 0.25, 0.75});
  const Vec3 mean = trace.average(0.3, 1.7);
  EXPECT_NEAR(mean.x, 0.5, 1e-12);
  EXPECT_NEAR(mean.y, 0.25, 1e-12);
  EXPECT_NEAR(mean.z, 0.75, 1e-12);
}

TEST(EmissionTrace, AverageBlendsAcrossBoundary) {
  EmissionTrace trace;
  trace.append(1.0, {1, 0, 0});
  trace.append(1.0, {0, 1, 0});
  // Window [0.5, 1.5] covers half of each.
  const Vec3 mean = trace.average(0.5, 1.5);
  EXPECT_NEAR(mean.x, 0.5, 1e-12);
  EXPECT_NEAR(mean.y, 0.5, 1e-12);
}

TEST(EmissionTrace, AverageIntegratesDarknessBeyondEnd) {
  EmissionTrace trace;
  trace.append(1.0, {1, 1, 1});
  // Window [0.5, 2.5): 0.5 s of light over a 2 s window.
  const Vec3 mean = trace.average(0.5, 2.5);
  EXPECT_NEAR(mean.x, 0.25, 1e-12);
}

TEST(EmissionTrace, AverageBeforeStartIsDarkWeighted) {
  EmissionTrace trace;
  trace.append(1.0, {1, 1, 1});
  const Vec3 mean = trace.average(-1.0, 1.0);
  EXPECT_NEAR(mean.x, 0.5, 1e-12);
}

TEST(EmissionTrace, DegenerateWindowIsDark) {
  EmissionTrace trace;
  trace.append(1.0, {1, 1, 1});
  EXPECT_EQ(trace.average(0.5, 0.5), Vec3());
  EXPECT_EQ(trace.average(0.7, 0.3), Vec3());
}

TEST(EmissionTrace, NanQueriesAreDarkNotUndefined) {
  // A NaN reaching the prefix-sum binary search would break
  // std::upper_bound's strict-weak-ordering precondition (UB); the
  // defined answer for "no such time" is darkness. The pd sampler
  // forwards caller-supplied windows verbatim, so these must be safe.
  EmissionTrace trace;
  trace.append(1.0, {1, 1, 1});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(trace.sample(nan), Vec3());
  EXPECT_EQ(trace.average(nan, 0.5), Vec3());
  EXPECT_EQ(trace.average(0.0, nan), Vec3());
  EXPECT_EQ(trace.average(nan, nan), Vec3());
}

TEST(EmissionTrace, InfiniteWindowsHaveDefinedMeans) {
  EmissionTrace trace;
  trace.append(1.0, {1, 1, 1});
  const double inf = std::numeric_limits<double>::infinity();
  // An infinite-length window divides a finite integral: mean zero.
  EXPECT_EQ(trace.average(-inf, inf), Vec3());
  EXPECT_EQ(trace.average(0.0, inf), Vec3());
  EXPECT_EQ(trace.average(-inf, 1.0), Vec3());
  // An inverted infinite window is still empty.
  EXPECT_EQ(trace.average(inf, -inf), Vec3());
  // sample() clamps to the trace ends, including at infinity.
  EXPECT_EQ(trace.sample(inf), Vec3(1, 1, 1));
  EXPECT_EQ(trace.sample(-inf), Vec3(1, 1, 1));
}

TEST(EmissionTrace, WindowsEntirelyOutsideTheTraceAreDark) {
  EmissionTrace trace;
  trace.append(1.0, {1, 1, 1});
  EXPECT_EQ(trace.average(2.0, 3.0), Vec3());
  EXPECT_EQ(trace.average(-3.0, -2.0), Vec3());
}

TEST(EmissionTrace, AppendTraceConcatenates) {
  EmissionTrace a;
  a.append(1.0, {1, 0, 0});
  EmissionTrace b;
  b.append(2.0, {0, 1, 0});
  a.append(b);
  EXPECT_DOUBLE_EQ(a.duration(), 3.0);
  EXPECT_EQ(a.sample(2.0), Vec3(0, 1, 0));
}

TEST(EmissionTrace, AverageMatchesBruteForceIntegration) {
  util::Xoshiro256 rng(90);
  EmissionTrace trace;
  std::vector<std::pair<double, Vec3>> segments;
  double total = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double duration = rng.uniform(0.001, 0.05);
    const Vec3 value{rng.uniform(), rng.uniform(), rng.uniform()};
    trace.append(duration, value);
    segments.emplace_back(duration, value);
    total += duration;
  }
  for (int trial = 0; trial < 50; ++trial) {
    const double t0 = rng.uniform(0.0, total);
    const double t1 = t0 + rng.uniform(0.001, total - t0);
    // Brute force: fine Riemann sum.
    const int steps = 20000;
    Vec3 sum;
    for (int s = 0; s < steps; ++s) {
      const double t = t0 + (s + 0.5) * (t1 - t0) / steps;
      sum += trace.sample(t);
    }
    const Vec3 brute = sum / steps;
    const Vec3 exact = trace.average(t0, t1);
    EXPECT_NEAR(exact.x, brute.x, 0.02);
    EXPECT_NEAR(exact.y, brute.y, 0.02);
    EXPECT_NEAR(exact.z, brute.z, 0.02);
  }
}

TEST(EmissionTrace, PrefixSumAverageMatchesReferenceWalk) {
  // average() computes the window integral as a difference of prefix
  // sums; this re-implements the original O(segments-in-window) walk
  // and checks equivalence over random windows, including windows that
  // spill past either end of the trace.
  util::Xoshiro256 rng(91);
  EmissionTrace trace;
  for (int i = 0; i < 4000; ++i) {
    trace.append(rng.uniform(1e-5, 5e-4), {rng.uniform(), rng.uniform(), rng.uniform()});
  }
  const auto& segments = trace.segments();
  auto reference_walk = [&](double t0, double t1) -> Vec3 {
    if (t1 <= t0 || segments.empty()) return {};
    const double window = t1 - t0;
    const double lo = std::max(t0, 0.0);
    const double hi = std::min(t1, trace.duration());
    if (hi <= lo) return {};
    Vec3 integral;
    double start = 0.0;
    for (const EmissionSegment& segment : segments) {
      const double end = start + segment.duration_s;
      const double slice_lo = std::max(lo, start);
      const double slice_hi = std::min(hi, end);
      if (slice_hi > slice_lo) integral += segment.rgb * (slice_hi - slice_lo);
      start = end;
    }
    return integral / window;
  };
  for (int trial = 0; trial < 500; ++trial) {
    const double t0 = rng.uniform(-0.05, trace.duration());
    const double t1 = t0 + rng.uniform(1e-6, 0.2);
    const Vec3 fast = trace.average(t0, t1);
    const Vec3 reference = reference_walk(t0, t1);
    ASSERT_NEAR(fast.x, reference.x, 1e-9) << "window [" << t0 << ", " << t1 << ")";
    ASSERT_NEAR(fast.y, reference.y, 1e-9);
    ASSERT_NEAR(fast.z, reference.z, 1e-9);
  }
}

TEST(EmissionTrace, LongTraceLookupIsConsistent) {
  EmissionTrace trace;
  for (int i = 0; i < 10000; ++i) {
    trace.append(0.001, {static_cast<double>(i % 7), 0, 0});
  }
  EXPECT_NEAR(trace.duration(), 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(trace.sample(5.0005).x, 5000 % 7);
  EXPECT_DOUBLE_EQ(trace.sample(9.9995).x, 9999 % 7);
}

}  // namespace
}  // namespace colorbars::led
