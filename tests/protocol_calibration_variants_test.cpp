#include <gtest/gtest.h>

#include "colorbars/protocol/packetizer.hpp"

namespace colorbars::protocol {
namespace {

class VariantsAllOrders : public ::testing::TestWithParam<csk::CskOrder> {
 protected:
  csk::Constellation constellation_{GetParam()};
  Packetizer packetizer_{{GetParam(), 0.8}, constellation_};
};

TEST_P(VariantsAllOrders, ForwardCarriesAscendingIndices) {
  const auto packet = packetizer_.build_calibration_packet();
  const std::size_t header =
      delimiter_sequence().size() + calibration_flag_sequence().size();
  for (int i = 0; i < constellation_.size(); ++i) {
    EXPECT_EQ(packet[header + static_cast<std::size_t>(i)],
              ChannelSymbol::data(i));
  }
}

TEST_P(VariantsAllOrders, ReversedCarriesDescendingIndices) {
  const auto packet = packetizer_.build_reversed_calibration_packet();
  const std::size_t header =
      delimiter_sequence().size() + reversed_calibration_flag_sequence().size();
  const int count = constellation_.size();
  for (int i = 0; i < count; ++i) {
    EXPECT_EQ(packet[header + static_cast<std::size_t>(i)],
              ChannelSymbol::data(count - 1 - i));
  }
}

TEST_P(VariantsAllOrders, RotatedStartsAtHalfAndWraps) {
  const auto packet = packetizer_.build_rotated_calibration_packet();
  const std::size_t header =
      delimiter_sequence().size() + rotated_calibration_flag_sequence().size();
  const int count = constellation_.size();
  for (int i = 0; i < count; ++i) {
    EXPECT_EQ(packet[header + static_cast<std::size_t>(i)],
              ChannelSymbol::data((count / 2 + i) % count));
  }
}

TEST_P(VariantsAllOrders, EachVariantCoversEveryIndexOnce) {
  for (const auto& packet : {packetizer_.build_calibration_packet(),
                             packetizer_.build_reversed_calibration_packet(),
                             packetizer_.build_rotated_calibration_packet()}) {
    std::vector<int> seen(static_cast<std::size_t>(constellation_.size()), 0);
    for (const ChannelSymbol& symbol : packet) {
      if (symbol.kind == SymbolKind::kData) {
        ++seen[static_cast<std::size_t>(symbol.data_index)];
      }
    }
    for (const int count : seen) EXPECT_EQ(count, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, VariantsAllOrders,
                         ::testing::Values(csk::CskOrder::kCsk4, csk::CskOrder::kCsk8,
                                           csk::CskOrder::kCsk16, csk::CskOrder::kCsk32),
                         [](const auto& info) {
                           return "Csk" + std::to_string(static_cast<int>(info.param));
                         });

TEST(CalibrationFlags, AreStrictPrefixExtensionsOfEachOther) {
  // The receiver's disambiguation (longest-first plus truncation guard)
  // relies on this chain: data < forward < reversed < rotated, each a
  // strict prefix of the next with an alternating (white, off) extension.
  const auto& data = data_flag_sequence();
  const auto& forward = calibration_flag_sequence();
  const auto& reversed = reversed_calibration_flag_sequence();
  const auto& rotated = rotated_calibration_flag_sequence();
  ASSERT_LT(data.size(), forward.size());
  ASSERT_LT(forward.size(), reversed.size());
  ASSERT_LT(reversed.size(), rotated.size());
  for (std::size_t i = 0; i < data.size(); ++i) EXPECT_EQ(data[i], forward[i]);
  for (std::size_t i = 0; i < forward.size(); ++i) EXPECT_EQ(forward[i], reversed[i]);
  for (std::size_t i = 0; i < reversed.size(); ++i) EXPECT_EQ(reversed[i], rotated[i]);
  // Each extension is exactly (white, off).
  EXPECT_EQ(reversed[forward.size()].kind, SymbolKind::kWhite);
  EXPECT_EQ(reversed[forward.size() + 1].kind, SymbolKind::kOff);
  EXPECT_EQ(rotated[reversed.size()].kind, SymbolKind::kWhite);
  EXPECT_EQ(rotated[reversed.size() + 1].kind, SymbolKind::kOff);
}

TEST(CalibrationFlags, AllFlagsStartAndEndWithOff) {
  for (const auto* flag :
       {&data_flag_sequence(), &calibration_flag_sequence(),
        &reversed_calibration_flag_sequence(), &rotated_calibration_flag_sequence()}) {
    EXPECT_EQ(flag->front().kind, SymbolKind::kOff);
    EXPECT_EQ(flag->back().kind, SymbolKind::kOff);
  }
}

}  // namespace
}  // namespace colorbars::protocol
