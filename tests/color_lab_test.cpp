#include "colorbars/color/lab.hpp"

#include <gtest/gtest.h>

#include "colorbars/color/srgb.hpp"
#include "colorbars/util/rng.hpp"

namespace colorbars::color {
namespace {

TEST(Lab, WhiteIsLightnessOnly) {
  const Lab white = xyz_to_lab(d65_white_xyz());
  EXPECT_NEAR(white.L, 100.0, 1e-9);
  EXPECT_NEAR(white.a, 0.0, 1e-9);
  EXPECT_NEAR(white.b, 0.0, 1e-9);
}

TEST(Lab, BlackIsZero) {
  const Lab black = xyz_to_lab({0, 0, 0});
  EXPECT_NEAR(black.L, 0.0, 1e-9);
}

TEST(Lab, RoundTripsThroughXyz) {
  util::Xoshiro256 rng(21);
  for (int i = 0; i < 200; ++i) {
    const util::Vec3 rgb{rng.uniform(0.05, 1.0), rng.uniform(0.05, 1.0),
                         rng.uniform(0.05, 1.0)};
    const XYZ xyz = linear_srgb_to_xyz(rgb);
    const XYZ back = lab_to_xyz(xyz_to_lab(xyz));
    EXPECT_NEAR(back.x, xyz.x, 1e-9);
    EXPECT_NEAR(back.y, xyz.y, 1e-9);
    EXPECT_NEAR(back.z, xyz.z, 1e-9);
  }
}

TEST(Lab, RedHasPositiveA) {
  const Lab red = xyz_to_lab(linear_srgb_to_xyz({1, 0, 0}));
  EXPECT_GT(red.a, 50.0);
}

TEST(Lab, GreenHasNegativeA) {
  const Lab green = xyz_to_lab(linear_srgb_to_xyz({0, 1, 0}));
  EXPECT_LT(green.a, -50.0);
}

TEST(Lab, BlueHasNegativeB) {
  const Lab blue = xyz_to_lab(linear_srgb_to_xyz({0, 0, 1}));
  EXPECT_LT(blue.b, -50.0);
}

TEST(Lab, YellowHasPositiveB) {
  const Lab yellow = xyz_to_lab(linear_srgb_to_xyz({1, 1, 0}));
  EXPECT_GT(yellow.b, 50.0);
}

TEST(Lab, LightnessIgnoresChromaticityForGrays) {
  // Scaling a gray's luminance changes only L, never a/b.
  for (const double scale : {0.1, 0.3, 0.6, 0.9}) {
    const Lab gray = xyz_to_lab(d65_white_xyz() * scale);
    EXPECT_NEAR(gray.a, 0.0, 1e-9);
    EXPECT_NEAR(gray.b, 0.0, 1e-9);
  }
}

TEST(Lab, BrightnessChangeMovesMostlyL) {
  // The core receiver assumption (paper Fig. 8b): scaling brightness of a
  // colored light moves L much more than (a, b).
  const XYZ base = linear_srgb_to_xyz({0.8, 0.3, 0.2});
  const Lab bright = xyz_to_lab(base);
  const Lab dim = xyz_to_lab(base * 0.5);
  const double chroma_shift = delta_e_ab(chroma_of(bright), chroma_of(dim));
  const double lightness_shift = std::abs(bright.L - dim.L);
  EXPECT_GT(lightness_shift, 1.2 * chroma_shift);
}

TEST(DeltaE, IsAMetric) {
  const Lab p{50, 10, -10};
  const Lab q{55, -5, 20};
  const Lab r{40, 0, 0};
  EXPECT_DOUBLE_EQ(delta_e(p, p), 0.0);
  EXPECT_DOUBLE_EQ(delta_e(p, q), delta_e(q, p));
  EXPECT_LE(delta_e(p, r), delta_e(p, q) + delta_e(q, r));
}

TEST(DeltaE, AbPlaneDistanceIgnoresL) {
  const Lab p{10, 3, 4};
  const Lab q{90, 0, 0};
  EXPECT_DOUBLE_EQ(delta_e_ab(chroma_of(p), chroma_of(q)), 5.0);
}

TEST(DeltaE, JndConstantMatchesPaper) { EXPECT_DOUBLE_EQ(kJndDeltaE, 2.3); }

}  // namespace
}  // namespace colorbars::color
