// Property-style invariants of the camera model: physical monotonicities
// that must hold regardless of tuning.

#include <gtest/gtest.h>

#include "colorbars/camera/camera.hpp"
#include "colorbars/csk/modulation.hpp"
#include "colorbars/led/tri_led.hpp"

namespace colorbars::camera {
namespace {

double mean_green(const Frame& frame) {
  double total = 0.0;
  for (const auto& pixel : frame.pixels) total += pixel.g;
  return total / static_cast<double>(frame.pixels.size());
}

led::EmissionTrace dim_white(double level) {
  const led::TriLed led;
  led::EmissionTrace trace;
  trace.append(0.2, led.radiance(csk::white_drive()) * level);
  return trace;
}

TEST(CameraInvariants, BrighterSceneGivesBrighterFrameAtFixedExposure) {
  SensorProfile profile = ideal_profile();
  double previous = -1.0;
  for (const double level : {0.02, 0.05, 0.1, 0.2, 0.4}) {
    RollingShutterCamera camera(profile, channel::OpticalChannel{}, 42);
    camera.set_manual_exposure({1.0 / 2000.0, 100.0});
    const double brightness = mean_green(camera.capture_frame(dim_white(level), 0.05));
    EXPECT_GT(brightness, previous) << "level " << level;
    previous = brightness;
  }
}

TEST(CameraInvariants, MoreAmbientNeverDarkensTheFrame) {
  SensorProfile profile = ideal_profile();
  double previous = -1.0;
  for (const double ambient : {0.0, 0.005, 0.02, 0.05}) {
    channel::ChannelSpec spec;
    spec.ambient.level = ambient;
    RollingShutterCamera camera(profile, channel::OpticalChannel(spec), 42);
    camera.set_manual_exposure({1.0 / 2000.0, 100.0});
    const double brightness = mean_green(camera.capture_frame(dim_white(0.1), 0.05));
    EXPECT_GE(brightness, previous - 0.5) << "ambient " << ambient;
    previous = brightness;
  }
}

TEST(CameraInvariants, AutoExposureIsMonotoneInSceneBrightness) {
  RollingShutterCamera camera(ideal_profile(), channel::OpticalChannel{});
  const led::TriLed led;
  double previous = 1e9;
  for (const double level : {0.05, 0.1, 0.3, 1.0, 3.0}) {
    const ExposureSettings settings =
        camera.auto_exposure(led.radiance(csk::white_drive()) * level);
    // Brighter scene -> equal or shorter effective exposure (exposure x gain).
    const double effective = settings.exposure_s * settings.iso;
    EXPECT_LE(effective, previous + 1e-12) << "level " << level;
    previous = effective;
  }
}

TEST(CameraInvariants, FramesNeverOverlapInTime) {
  SensorProfile profile = nexus5_profile();
  RollingShutterCamera camera(profile, channel::OpticalChannel{}, 7);
  const auto frames = camera.capture_video(dim_white(0.3));
  for (std::size_t i = 1; i < frames.size(); ++i) {
    const double previous_end =
        frames[i - 1].start_time_s + profile.readout_duration_s();
    EXPECT_GE(frames[i].start_time_s, previous_end - 1e-12) << "frame " << i;
  }
}

TEST(CameraInvariants, PixelValuesSaturateNotWrap) {
  // Gross overexposure must clip to 255, never wrap around.
  RollingShutterCamera camera(ideal_profile(), channel::OpticalChannel{}, 3);
  camera.set_manual_exposure({1.0 / 60.0, 3200.0});
  const Frame frame = camera.capture_frame(dim_white(1.0), 0.05);
  EXPECT_GE(frame.at(frame.rows / 2, frame.columns / 2).g, 250);
}

TEST(CameraInvariants, ExposureNeverExceedsProfileLimits) {
  RollingShutterCamera camera(iphone5s_profile(), channel::OpticalChannel{});
  const led::TriLed led;
  for (const double level : {1e-6, 1e-3, 0.1, 10.0}) {
    const ExposureSettings settings =
        camera.auto_exposure(led.radiance(csk::white_drive()) * level);
    EXPECT_GE(settings.exposure_s, iphone5s_profile().min_exposure_s);
    EXPECT_LE(settings.exposure_s, iphone5s_profile().max_exposure_s);
    EXPECT_GE(settings.iso, iphone5s_profile().min_iso);
    EXPECT_LE(settings.iso, iphone5s_profile().max_iso);
  }
}

}  // namespace
}  // namespace colorbars::camera
