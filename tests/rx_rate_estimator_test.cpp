#include "colorbars/rx/rate_estimator.hpp"

#include "colorbars/rx/receiver.hpp"

#include <gtest/gtest.h>

#include "colorbars/camera/camera.hpp"
#include "colorbars/tx/transmitter.hpp"
#include "colorbars/util/rng.hpp"

namespace colorbars::rx {
namespace {

std::vector<camera::Frame> capture_at_rate(double rate_hz, std::uint64_t seed) {
  tx::TransmitterConfig tx_config;
  tx_config.format.order = csk::CskOrder::kCsk8;
  tx_config.symbol_rate_hz = rate_hz;
  const tx::Transmitter transmitter(tx_config);
  util::Xoshiro256 rng(seed);
  std::vector<int> symbols(static_cast<std::size_t>(rate_hz));  // 1 s of data
  for (auto& symbol : symbols) symbol = static_cast<int>(rng.below(8));
  const tx::Transmission transmission = transmitter.transmit_raw_symbols(symbols);
  camera::RollingShutterCamera camera(camera::ideal_profile(), {}, seed);
  return camera.capture_video(transmission.trace);
}

TEST(RateFitResidual, ExactMultiplesScoreZero) {
  const std::vector<double> durations{0.001, 0.002, 0.003, 0.005};
  EXPECT_NEAR(rate_fit_residual(durations, 1000.0), 0.0, 1e-12);
}

TEST(RateFitResidual, HalfOffsetsScoreHalf) {
  const std::vector<double> durations{0.0015};
  EXPECT_NEAR(rate_fit_residual(durations, 1000.0), 0.5, 1e-9);
}

TEST(RateFitResidual, EmptyInputIsWorstCase) {
  EXPECT_DOUBLE_EQ(rate_fit_residual({}, 1000.0), 1.0);
}

class RateRecovery : public ::testing::TestWithParam<double> {};

TEST_P(RateRecovery, RecoversTrueRateWithinTwoPercent) {
  // Band durations are measured in whole scanline rows, so the fit
  // carries a quantization bias that can reach ~2% of the true rate
  // depending on how symbol edges phase against the row clock (seed
  // sweeps at 2 kHz place estimates in 1963..2010 Hz). Assert the
  // estimator lands within that measurement floor, not tighter.
  const double true_rate = GetParam();
  const auto frames = capture_at_rate(true_rate, 1234);
  const RateEstimate estimate = estimate_symbol_rate(frames);
  EXPECT_TRUE(estimate.plausible())
      << "residual " << estimate.residual << " bands " << estimate.band_count;
  EXPECT_NEAR(estimate.symbol_rate_hz, true_rate, 0.02 * true_rate);
}

INSTANTIATE_TEST_SUITE_P(Rates, RateRecovery,
                         ::testing::Values(1000.0, 1700.0, 2000.0, 3100.0),
                         [](const auto& info) {
                           return "Hz" + std::to_string(static_cast<int>(info.param));
                         });

TEST(RateEstimator, DegenerateRangeReturnsNoEstimate) {
  // A non-positive minimum rate used to hang the multiplicative coarse
  // scan (rate *= 1.01 never leaves zero); an inverted range has no
  // candidates. Both must return an implausible estimate immediately.
  const auto frames = capture_at_rate(1000.0, 99);
  for (const auto& [min_rate, max_rate] :
       {std::pair{0.0, 4500.0}, {-100.0, 4500.0}, {2000.0, 1000.0}}) {
    const RateEstimate estimate = estimate_symbol_rate(frames, min_rate, max_rate);
    EXPECT_FALSE(estimate.plausible()) << min_rate << ".." << max_rate;
    EXPECT_DOUBLE_EQ(estimate.symbol_rate_hz, 0.0) << min_rate << ".." << max_rate;
    EXPECT_GT(estimate.band_count, 0);  // the guard fires after band counting
  }
}

TEST(RateEstimator, StaticSceneIsNotPlausible) {
  // A steady white LED produces one band per frame — no rate information.
  const led::TriLed led;
  led::EmissionTrace trace;
  trace.append(1.0, led.radiance(csk::white_drive()));
  camera::RollingShutterCamera camera(camera::ideal_profile(), {}, 5);
  const auto frames = camera.capture_video(trace);
  const RateEstimate estimate = estimate_symbol_rate(frames);
  EXPECT_FALSE(estimate.plausible());
}

TEST(RateEstimator, NoFramesIsNotPlausible) {
  const RateEstimate estimate = estimate_symbol_rate({});
  EXPECT_FALSE(estimate.plausible());
  EXPECT_EQ(estimate.band_count, 0);
}

TEST(RateEstimator, ReestimatesAcrossMidStreamRateSwitch) {
  // A link-adaptation rung change switches the symbol rate mid-stream
  // (an epoch boundary in adapt/StreamingReceiver terms). The estimator
  // is per-epoch by construction: run on each epoch's frames it must
  // recover that epoch's rate, and the two estimates must be clearly
  // distinct — stale pre-switch estimates cannot carry across.
  const double rate_before = 1000.0;
  const double rate_after = 2000.0;
  const auto epoch0 = capture_at_rate(rate_before, 4242);
  const auto epoch1 = capture_at_rate(rate_after, 4243);

  const RateEstimate before = estimate_symbol_rate(epoch0);
  const RateEstimate after = estimate_symbol_rate(epoch1);
  ASSERT_TRUE(before.plausible());
  ASSERT_TRUE(after.plausible());
  EXPECT_NEAR(before.symbol_rate_hz, rate_before, 0.02 * rate_before);
  EXPECT_NEAR(after.symbol_rate_hz, rate_after, 0.02 * rate_after);
  EXPECT_GT(after.symbol_rate_hz, 1.5 * before.symbol_rate_hz);

  // Carrying the stale rate across the switch must read as a bad fit:
  // the post-switch bands, measured against the pre-switch rate's
  // neighborhood, fit strictly worse than against their own rate.
  const RateEstimate stale =
      estimate_symbol_rate(epoch1, 0.9 * rate_before, 1.1 * rate_before);
  EXPECT_GT(stale.residual, after.residual);
}

TEST(RateEstimator, EstimateFeedsTheReceiver) {
  // End-to-end: estimate the rate blindly, then decode with it.
  const double true_rate = 2400.0;
  const auto frames = capture_at_rate(true_rate, 777);
  const RateEstimate estimate = estimate_symbol_rate(frames);
  ASSERT_TRUE(estimate.plausible());

  ReceiverConfig config;
  config.format.order = csk::CskOrder::kCsk8;
  config.symbol_rate_hz = estimate.symbol_rate_hz;
  config.rs_n = 16;
  config.rs_k = 9;
  Receiver receiver(config);
  const ReceiverReport report = receiver.process(frames);
  // The raw stream has calibration packets; the estimated rate must be
  // accurate enough to parse them.
  EXPECT_GE(report.calibration_packets, 1);
}

}  // namespace
}  // namespace colorbars::rx
