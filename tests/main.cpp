// Custom test main (replaces GTest::gtest_main): the trial-service
// tests spawn worker processes by re-executing /proc/self/exe — i.e.
// this very test binary — so worker-mode bootstrap must run before
// gtest does. With the worker socket env set, maybe_run_worker() serves
// jobs and _exits; otherwise it is a no-op and the tests run normally.

#include <gtest/gtest.h>

#include "colorbars/svc/service.hpp"

int main(int argc, char** argv) {
  colorbars::svc::maybe_run_worker();
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
