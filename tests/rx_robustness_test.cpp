// Failure-injection tests: the receiver must degrade gracefully — never
// crash, never mis-credit — when fed corrupted, truncated or adversarial
// slot timelines and frames.

#include <gtest/gtest.h>

#include "colorbars/camera/camera.hpp"
#include "colorbars/core/link.hpp"
#include "colorbars/rx/receiver.hpp"
#include "colorbars/tx/transmitter.hpp"
#include "colorbars/util/rng.hpp"

namespace colorbars::rx {
namespace {

ReceiverConfig small_rx_config() {
  ReceiverConfig config;
  config.format.order = csk::CskOrder::kCsk8;
  config.symbol_rate_hz = 2000.0;
  config.rs_n = 16;
  config.rs_k = 9;
  return config;
}

TEST(Robustness, RandomTimelinesNeverCrashOrYieldPackets) {
  util::Xoshiro256 rng(31337);
  Receiver receiver(small_rx_config());
  for (int trial = 0; trial < 30; ++trial) {
    SlotTimeline timeline;
    timeline.base_slot = static_cast<long long>(rng.below(1000));
    timeline.slots.resize(200 + rng.below(400));
    for (auto& cell : timeline.slots) {
      if (rng.chance(0.3)) continue;  // missing slot
      SlotObservation observation;
      observation.chroma = {rng.uniform(-90, 90), rng.uniform(-90, 90)};
      observation.lightness = rng.uniform(0, 100);
      observation.rgb = {rng.uniform(), rng.uniform(), rng.uniform()};
      cell = observation;
    }
    const ReceiverReport report = receiver.parse(timeline);
    // Whatever it finds, a decoded packet must pass RS validation — and
    // random noise must (with overwhelming probability) never produce one.
    EXPECT_EQ(report.data_packets_ok, 0) << "trial " << trial;
  }
}

TEST(Robustness, AllDarkTimelineYieldsNothing) {
  Receiver receiver(small_rx_config());
  SlotTimeline timeline;
  timeline.slots.resize(500);
  for (auto& cell : timeline.slots) {
    SlotObservation observation;
    observation.lightness = 2.0;
    cell = observation;
  }
  const ReceiverReport report = receiver.parse(timeline);
  EXPECT_EQ(report.data_packets_ok, 0);
  EXPECT_EQ(report.calibration_packets, 0);
}

TEST(Robustness, AllWhiteTimelineYieldsNothing) {
  Receiver receiver(small_rx_config());
  SlotTimeline timeline;
  timeline.slots.resize(500);
  for (auto& cell : timeline.slots) {
    SlotObservation observation;
    observation.lightness = 70.0;
    observation.chroma = {2.0, 4.0};
    cell = observation;
  }
  const ReceiverReport report = receiver.parse(timeline);
  EXPECT_TRUE(report.packets.empty());
}

TEST(Robustness, CorruptedFramePixelsDegradeGracefully) {
  // Flip random pixels of every frame; decode must not crash and every
  // packet it does credit must be genuine (RS-validated).
  const camera::SensorProfile profile = camera::ideal_profile();
  const rs::CodeParameters code = core::derive_link_code(
      csk::CskOrder::kCsk8, 2000.0, profile.fps, profile.inter_frame_loss_ratio, 0.8);
  tx::TransmitterConfig tx_config;
  tx_config.format.order = csk::CskOrder::kCsk8;
  tx_config.symbol_rate_hz = 2000.0;
  tx_config.rs_n = code.n;
  tx_config.rs_k = code.k;
  const tx::Transmitter transmitter(tx_config);
  util::Xoshiro256 rng(606);
  std::vector<std::uint8_t> payload(60);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.below(256));
  const tx::Transmission transmission = transmitter.transmit(payload);

  camera::RollingShutterCamera camera(profile, {}, 9);
  auto frames = camera.capture_video(transmission.trace);
  for (auto& frame : frames) {
    for (int i = 0; i < 500; ++i) {
      const auto index = rng.below(frame.pixels.size());
      frame.pixels[index] = {static_cast<std::uint8_t>(rng.below(256)),
                             static_cast<std::uint8_t>(rng.below(256)),
                             static_cast<std::uint8_t>(rng.below(256))};
    }
  }

  ReceiverConfig rx_config;
  rx_config.format = tx_config.format;
  rx_config.symbol_rate_hz = 2000.0;
  rx_config.rs_n = code.n;
  rx_config.rs_k = code.k;
  Receiver receiver(rx_config);
  const ReceiverReport report = receiver.process(frames);
  for (const PacketRecord& record : report.packets) {
    if (record.kind != protocol::PacketKind::kData || !record.ok) continue;
    bool genuine = false;
    for (const auto& truth : transmission.packet_messages) {
      if (record.payload == truth) genuine = true;
    }
    EXPECT_TRUE(genuine);
  }
}

TEST(Robustness, DroppedFramesOnlyCostTheirPackets) {
  const camera::SensorProfile profile = camera::ideal_profile();
  const rs::CodeParameters code = core::derive_link_code(
      csk::CskOrder::kCsk8, 2000.0, profile.fps, profile.inter_frame_loss_ratio, 0.8);
  tx::TransmitterConfig tx_config;
  tx_config.format.order = csk::CskOrder::kCsk8;
  tx_config.symbol_rate_hz = 2000.0;
  tx_config.rs_n = code.n;
  tx_config.rs_k = code.k;
  const tx::Transmitter transmitter(tx_config);
  const tx::Transmission transmission =
      transmitter.transmit(std::vector<std::uint8_t>(180, 0x3c));

  camera::RollingShutterCamera camera(profile, {}, 11);
  const auto frames = camera.capture_video(transmission.trace);
  // Drop every 4th frame (Android pipelines drop frames under load).
  std::vector<camera::Frame> degraded;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i % 4 != 3) degraded.push_back(frames[i]);
  }

  ReceiverConfig rx_config;
  rx_config.format = tx_config.format;
  rx_config.symbol_rate_hz = 2000.0;
  rx_config.rs_n = code.n;
  rx_config.rs_k = code.k;
  Receiver full_receiver(rx_config);
  Receiver degraded_receiver(rx_config);
  const int full = full_receiver.process(frames).data_packets_ok;
  const int dropped = degraded_receiver.process(degraded).data_packets_ok;
  EXPECT_GT(dropped, 0);
  EXPECT_LE(dropped, full);
}

TEST(Robustness, MismatchedSymbolRateDecodesNothing) {
  // Receiver configured for the wrong symbol rate must not "decode"
  // anything (RS validation backstop).
  const camera::SensorProfile profile = camera::ideal_profile();
  tx::TransmitterConfig tx_config;
  tx_config.format.order = csk::CskOrder::kCsk8;
  tx_config.symbol_rate_hz = 2000.0;
  tx_config.rs_n = 16;
  tx_config.rs_k = 9;
  const tx::Transmitter transmitter(tx_config);
  const tx::Transmission transmission =
      transmitter.transmit(std::vector<std::uint8_t>(45, 0x99));
  camera::RollingShutterCamera camera(profile, {}, 13);
  const auto frames = camera.capture_video(transmission.trace);

  ReceiverConfig rx_config = small_rx_config();
  rx_config.symbol_rate_hz = 3000.0;  // wrong
  Receiver receiver(rx_config);
  const ReceiverReport report = receiver.process(frames);
  EXPECT_EQ(report.data_packets_ok, 0);
}

}  // namespace
}  // namespace colorbars::rx
