#include "colorbars/gf/gf256.hpp"

#include <gtest/gtest.h>

#include "colorbars/util/rng.hpp"

namespace colorbars::gf {
namespace {

GF256 random_element(util::Xoshiro256& rng) {
  return GF256(static_cast<std::uint8_t>(rng.below(256)));
}

GF256 random_nonzero(util::Xoshiro256& rng) {
  return GF256(static_cast<std::uint8_t>(1 + rng.below(255)));
}

TEST(GF256, AdditionIsXor) {
  EXPECT_EQ(GF256(0x53) + GF256(0xca), GF256(0x99));
  EXPECT_EQ(GF256(0xff) - GF256(0xff), kZero);
}

TEST(GF256, KnownProduct) {
  // 0x53 * 0xca = 0x01 in GF(2^8) with poly 0x11D... verify a standard
  // identity instead: alpha * alpha^254 = 1.
  EXPECT_EQ(alpha_pow(1) * alpha_pow(254), kOne);
  EXPECT_EQ(GF256(2) * GF256(3), GF256(6));
  EXPECT_EQ(GF256(0x80) * GF256(2), GF256(0x1D));  // overflow reduces by poly
}

TEST(GF256, MultiplicationIsCommutativeAndAssociative) {
  util::Xoshiro256 rng(50);
  for (int i = 0; i < 500; ++i) {
    const GF256 a = random_element(rng);
    const GF256 b = random_element(rng);
    const GF256 c = random_element(rng);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
  }
}

TEST(GF256, DistributiveLaw) {
  util::Xoshiro256 rng(51);
  for (int i = 0; i < 500; ++i) {
    const GF256 a = random_element(rng);
    const GF256 b = random_element(rng);
    const GF256 c = random_element(rng);
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST(GF256, MultiplicativeIdentityAndZero) {
  util::Xoshiro256 rng(52);
  for (int i = 0; i < 100; ++i) {
    const GF256 a = random_element(rng);
    EXPECT_EQ(a * kOne, a);
    EXPECT_EQ(a * kZero, kZero);
  }
}

TEST(GF256, EveryNonzeroElementHasInverse) {
  for (int v = 1; v < 256; ++v) {
    const GF256 a(static_cast<std::uint8_t>(v));
    EXPECT_EQ(a * a.inverse(), kOne) << "v=" << v;
  }
}

TEST(GF256, DivisionInvertsMultiplication) {
  util::Xoshiro256 rng(53);
  for (int i = 0; i < 500; ++i) {
    const GF256 a = random_element(rng);
    const GF256 b = random_nonzero(rng);
    EXPECT_EQ((a * b) / b, a);
  }
}

TEST(GF256, AlphaPowersCycleWithPeriod255) {
  EXPECT_EQ(alpha_pow(0), kOne);
  EXPECT_EQ(alpha_pow(255), kOne);
  EXPECT_EQ(alpha_pow(256), alpha_pow(1));
  EXPECT_EQ(alpha_pow(-1), alpha_pow(254));
}

TEST(GF256, AlphaGeneratesWholeGroup) {
  std::array<bool, 256> seen{};
  for (int i = 0; i < 255; ++i) {
    const GF256 v = alpha_pow(i);
    EXPECT_FALSE(seen[v.value()]) << "alpha^" << i << " repeats";
    seen[v.value()] = true;
  }
}

TEST(GF256, LogInvertsExp) {
  for (int i = 0; i < 255; ++i) {
    EXPECT_EQ(alpha_log(alpha_pow(i)), i);
  }
}

TEST(GF256, PowMatchesRepeatedMultiplication) {
  util::Xoshiro256 rng(54);
  for (int trial = 0; trial < 50; ++trial) {
    const GF256 a = random_nonzero(rng);
    GF256 product = kOne;
    for (int e = 0; e < 10; ++e) {
      EXPECT_EQ(a.pow(e), product);
      product *= a;
    }
  }
}

TEST(GF256, PowHandlesNegativeExponents) {
  util::Xoshiro256 rng(55);
  for (int trial = 0; trial < 100; ++trial) {
    const GF256 a = random_nonzero(rng);
    EXPECT_EQ(a.pow(-1), a.inverse());
    EXPECT_EQ(a.pow(-3) * a.pow(3), kOne);
  }
}

TEST(GF256, FrobeniusSquareIsLinear) {
  // In characteristic 2, (a + b)^2 = a^2 + b^2.
  util::Xoshiro256 rng(56);
  for (int i = 0; i < 200; ++i) {
    const GF256 a = random_element(rng);
    const GF256 b = random_element(rng);
    EXPECT_EQ((a + b).pow(2), a.pow(2) + b.pow(2));
  }
}

}  // namespace
}  // namespace colorbars::gf
