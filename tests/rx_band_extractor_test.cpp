#include "colorbars/rx/band_extractor.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "colorbars/camera/camera.hpp"
#include "colorbars/csk/constellation.hpp"
#include "colorbars/led/tri_led.hpp"
#include "colorbars/protocol/symbols.hpp"

namespace colorbars::rx {
namespace {

using protocol::ChannelSymbol;

/// Renders a symbol sequence and captures one frame starting at t=0.
camera::Frame capture_symbols(const std::vector<ChannelSymbol>& symbols,
                              double symbol_rate_hz,
                              const camera::SensorProfile& profile) {
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  const led::TriLed led;
  const led::EmissionTrace trace =
      led.emit(protocol::drives_of(symbols, constellation), symbol_rate_hz);
  camera::RollingShutterCamera camera(profile, {}, 4321);
  return camera.capture_frame(trace, 0.0);
}

TEST(ReduceToScanlines, ProducesOneColorPerRow) {
  const std::vector<ChannelSymbol> symbols(100, ChannelSymbol::white());
  const camera::Frame frame = capture_symbols(symbols, 2000, camera::ideal_profile());
  const auto scanlines = reduce_to_scanlines(frame);
  EXPECT_EQ(scanlines.size(), static_cast<std::size_t>(frame.rows));
}

TEST(ReduceToScanlines, WhiteRowsAreBrightAndNeutral) {
  const std::vector<ChannelSymbol> symbols(100, ChannelSymbol::white());
  const camera::Frame frame = capture_symbols(symbols, 2000, camera::ideal_profile());
  const auto scanlines = reduce_to_scanlines(frame);
  const auto& middle = scanlines[scanlines.size() / 2];
  EXPECT_GT(middle.lightness, 40.0);
  EXPECT_LT(std::abs(middle.chroma.a), 12.0);
  EXPECT_LT(std::abs(middle.chroma.b), 12.0);
}

TEST(SegmentBands, UniformFrameIsOneBand) {
  const std::vector<ChannelSymbol> symbols(100, ChannelSymbol::white());
  const camera::Frame frame = capture_symbols(symbols, 2000, camera::ideal_profile());
  const auto bands = segment_bands(frame, reduce_to_scanlines(frame), {});
  ASSERT_EQ(bands.size(), 1u);
  // The very first rows integrate darkness from before the trace start,
  // so they may split off and be dropped as a sub-minimum band.
  EXPECT_LE(bands[0].start_row, 2);
  EXPECT_GE(bands[0].row_count, frame.rows - 3);
}

TEST(SegmentBands, AlternatingSymbolsSplitIntoBands) {
  std::vector<ChannelSymbol> symbols;
  for (int i = 0; i < 200; ++i) {
    symbols.push_back(i % 2 == 0 ? ChannelSymbol::data(0)   // red vertex
                                 : ChannelSymbol::data(1)); // green vertex
  }
  const camera::Frame frame = capture_symbols(symbols, 1000, camera::ideal_profile());
  const auto bands = segment_bands(frame, reduce_to_scanlines(frame), {});
  // Readout ~25 ms at 1 kHz -> ~25 bands.
  EXPECT_GT(bands.size(), 15u);
  EXPECT_LT(bands.size(), 35u);
  // Alternation: consecutive bands have very different chroma.
  for (std::size_t i = 1; i < bands.size(); ++i) {
    EXPECT_GT(color::delta_e_ab(bands[i].chroma, bands[i - 1].chroma), 20.0);
  }
}

TEST(SegmentBands, BandWidthTracksSymbolRate) {
  // Fig. 3c: bands at 3000 sym/s are a third the width of 1000 sym/s.
  auto mean_width = [](const std::vector<Band>& bands) {
    double total = 0.0;
    int count = 0;
    for (std::size_t i = 1; i + 1 < bands.size(); ++i) {  // skip edge bands
      total += bands[i].row_count;
      ++count;
    }
    return total / count;
  };
  std::vector<ChannelSymbol> symbols;
  for (int i = 0; i < 600; ++i) {
    symbols.push_back(i % 2 == 0 ? ChannelSymbol::data(0) : ChannelSymbol::data(1));
  }
  const camera::Frame slow = capture_symbols(symbols, 1000, camera::ideal_profile());
  const camera::Frame fast = capture_symbols(symbols, 3000, camera::ideal_profile());
  const double slow_width = mean_width(segment_bands(slow, reduce_to_scanlines(slow), {}));
  const double fast_width = mean_width(segment_bands(fast, reduce_to_scanlines(fast), {}));
  // Exposure-blur eats a fixed number of transition rows per band, which
  // inflates the ratio slightly above the ideal 3.0.
  EXPECT_NEAR(slow_width / fast_width, 3.0, 0.9);
}

TEST(SegmentBands, MinBandRowsFiltersSpurs) {
  std::vector<ChannelSymbol> symbols;
  for (int i = 0; i < 400; ++i) {
    symbols.push_back(i % 2 == 0 ? ChannelSymbol::data(0) : ChannelSymbol::data(2));
  }
  const camera::Frame frame = capture_symbols(symbols, 2000, camera::ideal_profile());
  ExtractorConfig strict;
  strict.min_band_rows = 10;
  const auto bands = segment_bands(frame, reduce_to_scanlines(frame), strict);
  for (const Band& band : bands) {
    EXPECT_GE(band.row_count, 10);
  }
}

TEST(BandsToSlots, MapsBandTimesToSlotIndices) {
  // Hand-built bands: symbol duration 1 ms.
  std::vector<Band> bands;
  Band band;
  band.start_time_s = 0.0102;  // covers slots 10..14 at 1 kHz
  band.end_time_s = 0.0149;
  band.chroma = {10, 20};
  band.lightness = 50;
  bands.push_back(band);
  const auto slots = bands_to_slots(bands, 1000.0);
  ASSERT_EQ(slots.size(), 5u);
  EXPECT_EQ(slots.front().slot, 10);
  EXPECT_EQ(slots.back().slot, 14);
  for (const auto& slot : slots) {
    EXPECT_DOUBLE_EQ(slot.chroma.a, 10);
    EXPECT_DOUBLE_EQ(slot.lightness, 50);
  }
}

TEST(BandsToSlots, SubSlotBandContributesNothing) {
  std::vector<Band> bands;
  Band band;
  band.start_time_s = 0.0101;
  band.end_time_s = 0.0103;  // 0.2 of a slot
  bands.push_back(band);
  EXPECT_TRUE(bands_to_slots(bands, 1000.0).empty());
}

TEST(ExtractSlots, RecoversDistinctSymbolRuns) {
  // o w o pattern at 2 kHz: extract_slots should yield exactly those
  // three slots with dark-bright-dark lightness.
  std::vector<ChannelSymbol> symbols(60, ChannelSymbol::white());
  symbols[20] = ChannelSymbol::off();
  symbols[22] = ChannelSymbol::off();
  const camera::Frame frame = capture_symbols(symbols, 2000, camera::ideal_profile());
  const auto slots = extract_slots(frame, 2000);
  // Find slots 20..22.
  double l20 = -1, l21 = -1, l22 = -1;
  for (const auto& slot : slots) {
    if (slot.slot == 20) l20 = slot.lightness;
    if (slot.slot == 21) l21 = slot.lightness;
    if (slot.slot == 22) l22 = slot.lightness;
  }
  ASSERT_GE(l20, 0.0);
  ASSERT_GE(l21, 0.0);
  ASSERT_GE(l22, 0.0);
  EXPECT_LT(l20, 20.0);
  EXPECT_GT(l21, 35.0);
  EXPECT_LT(l22, 20.0);
}

TEST(ReduceToScanlines, EmptyFrameYieldsNoScanlines) {
  const camera::Frame frame;  // zero rows, zero columns
  EXPECT_TRUE(reduce_to_scanlines(frame).empty());
  EXPECT_TRUE(reduce_to_scanlines(frame, 0, 10).empty());
}

TEST(ReduceToScanlines, ZeroColumnFrameYieldsNoScanlines) {
  camera::Frame frame;
  frame.rows = 8;  // resize() rejects zero dimensions; build the shape by hand
  frame.columns = 0;
  EXPECT_TRUE(reduce_to_scanlines(frame).empty());
}

TEST(ReduceToScanlines, EmptyRoiYieldsNoScanlines) {
  const std::vector<ChannelSymbol> symbols(50, ChannelSymbol::white());
  const camera::Frame frame = capture_symbols(symbols, 2000, camera::ideal_profile());
  EXPECT_TRUE(reduce_to_scanlines(frame, 5, 5).empty());
  EXPECT_TRUE(reduce_to_scanlines(frame, 12, 7).empty());
  // A range entirely outside the frame clamps to empty.
  EXPECT_TRUE(reduce_to_scanlines(frame, frame.columns, frame.columns + 8).empty());
  EXPECT_TRUE(reduce_to_scanlines(frame, -10, 0).empty());
}

TEST(ReduceToScanlines, FullFrameRoiMatchesPlainReduction) {
  const std::vector<ChannelSymbol> symbols(100, ChannelSymbol::data(3));
  const camera::Frame frame = capture_symbols(symbols, 2000, camera::ideal_profile());
  const auto plain = reduce_to_scanlines(frame);
  // Both the exact range and an over-wide range (clamped) must reproduce
  // the full-frame reduction bit for bit.
  const auto exact = reduce_to_scanlines(frame, 0, frame.columns);
  const auto wide = reduce_to_scanlines(frame, -3, frame.columns + 3);
  ASSERT_EQ(exact.size(), plain.size());
  ASSERT_EQ(wide.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(exact[i].lightness, plain[i].lightness);
    EXPECT_EQ(exact[i].chroma.a, plain[i].chroma.a);
    EXPECT_EQ(exact[i].chroma.b, plain[i].chroma.b);
    EXPECT_EQ(wide[i].lightness, plain[i].lightness);
    EXPECT_EQ(wide[i].rgb.x, plain[i].rgb.x);
  }
}

TEST(SegmentBands, BandMayEndExactlyAtLastRow) {
  // A uniform frame's single band must close at the frame boundary with
  // its row extent inside [0, rows].
  const std::vector<ChannelSymbol> symbols(200, ChannelSymbol::data(1));
  const camera::Frame frame = capture_symbols(symbols, 2000, camera::ideal_profile());
  const auto bands = segment_bands(frame, reduce_to_scanlines(frame), {});
  ASSERT_FALSE(bands.empty());
  const Band& last = bands.back();
  EXPECT_EQ(last.start_row + last.row_count, frame.rows);
  EXPECT_GT(last.end_time_s, last.start_time_s);
}

TEST(BandsToSlots, NonPositiveSymbolRateYieldsNoSlots) {
  std::vector<Band> bands;
  Band band;
  band.start_time_s = 0.0;
  band.end_time_s = 0.050;
  bands.push_back(band);
  EXPECT_TRUE(bands_to_slots(bands, 0.0).empty());
  EXPECT_TRUE(bands_to_slots(bands, -1000.0).empty());
  EXPECT_TRUE(bands_to_slots(bands, std::numeric_limits<double>::quiet_NaN()).empty());
}

TEST(ExtractSlots, NonPositiveSymbolRateYieldsNoSlots) {
  const std::vector<ChannelSymbol> symbols(60, ChannelSymbol::white());
  const camera::Frame frame = capture_symbols(symbols, 2000, camera::ideal_profile());
  EXPECT_TRUE(extract_slots(frame, 0.0).empty());
  EXPECT_TRUE(extract_slots(frame, std::numeric_limits<double>::quiet_NaN()).empty());
}

TEST(ExtractSlots, FullFrameRoiMatchesPlainExtraction) {
  std::vector<ChannelSymbol> symbols(80, ChannelSymbol::white());
  symbols[30] = ChannelSymbol::off();
  const camera::Frame frame = capture_symbols(symbols, 2000, camera::ideal_profile());
  const auto plain = extract_slots(frame, 2000);
  const auto roi = extract_slots(frame, 2000, 0, frame.columns);
  ASSERT_EQ(roi.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(roi[i].slot, plain[i].slot);
    EXPECT_EQ(roi[i].lightness, plain[i].lightness);
    EXPECT_EQ(roi[i].chroma.a, plain[i].chroma.a);
  }
}

TEST(ExtractSlots, VignettingDoesNotBreakChroma) {
  // Column averaging + CIELab should keep a colored band's chroma stable
  // even with strong vignetting (paper Fig. 8 rationale).
  std::vector<ChannelSymbol> symbols(120, ChannelSymbol::data(0));
  camera::SensorProfile vignetted = camera::ideal_profile();
  vignetted.vignette_strength = 0.5;
  const camera::Frame frame = capture_symbols(symbols, 2000, vignetted);
  const camera::Frame clean = capture_symbols(symbols, 2000, camera::ideal_profile());
  const auto slots_vignetted = extract_slots(frame, 2000);
  const auto slots_clean = extract_slots(clean, 2000);
  ASSERT_FALSE(slots_vignetted.empty());
  ASSERT_FALSE(slots_clean.empty());
  const auto& a = slots_vignetted[slots_vignetted.size() / 2];
  const auto& b = slots_clean[slots_clean.size() / 2];
  EXPECT_LT(color::delta_e_ab(a.chroma, b.chroma), 15.0);
}

}  // namespace
}  // namespace colorbars::rx
