#include "colorbars/rx/calibration_store.hpp"

#include <gtest/gtest.h>

namespace colorbars::rx {
namespace {

SlotObservation observation(double a, double b, double lightness) {
  SlotObservation obs;
  obs.chroma = {a, b};
  obs.lightness = lightness;
  return obs;
}

TEST(CalibrationStore, RejectsInvalidSymbolCount) {
  EXPECT_THROW(CalibrationStore(0), std::invalid_argument);
}

TEST(CalibrationStore, StartsUncalibrated) {
  const CalibrationStore store(8);
  EXPECT_FALSE(store.calibrated());
  EXPECT_FALSE(store.reference(0).has_value());
}

TEST(CalibrationStore, AbsorbRejectsWrongColorCount) {
  CalibrationStore store(8);
  EXPECT_THROW(store.absorb_calibration({{1, 1}}), std::invalid_argument);
}

TEST(CalibrationStore, AbsorbMakesReferencesAvailable) {
  CalibrationStore store(4);
  store.absorb_calibration({{50, 0}, {-40, 30}, {0, -60}, {1, 2}});
  EXPECT_TRUE(store.calibrated());
  ASSERT_TRUE(store.reference(2).has_value());
  EXPECT_DOUBLE_EQ(store.reference(2)->b, -60.0);
  EXPECT_FALSE(store.reference(4).has_value());
  EXPECT_FALSE(store.reference(-1).has_value());
}

TEST(CalibrationStore, OffDetectionUsesLightness) {
  const CalibrationStore store(8);
  EXPECT_TRUE(store.is_off(observation(0, 0, 5)));
  EXPECT_FALSE(store.is_off(observation(0, 0, 60)));
}

TEST(CalibrationStore, DimButChromaticIsNotOff) {
  // A deep blue band is dim but strongly chromatic: must not be OFF.
  const CalibrationStore store(8);
  EXPECT_FALSE(store.is_off(observation(30, -70, 12)));
}

TEST(CalibrationStore, ClassifiesOffFirst) {
  CalibrationStore store(4);
  store.absorb_calibration({{50, 0}, {-40, 30}, {0, -60}, {1, 2}});
  const Classification result = store.classify(observation(0, 0, 3));
  EXPECT_EQ(result.symbol.kind, protocol::SymbolKind::kOff);
  EXPECT_TRUE(result.confident);
}

TEST(CalibrationStore, UncalibratedLitBandIsWhite) {
  CalibrationStore store(8);
  store.absorb_white({1.0, 2.0});
  const Classification near_white = store.classify(observation(1.5, 2.2, 60));
  EXPECT_EQ(near_white.symbol.kind, protocol::SymbolKind::kWhite);
  EXPECT_TRUE(near_white.confident);
  const Classification colored = store.classify(observation(60, -10, 60));
  EXPECT_EQ(colored.symbol.kind, protocol::SymbolKind::kWhite);
  EXPECT_FALSE(colored.confident);
}

TEST(CalibrationStore, ClassifiesNearestReference) {
  CalibrationStore store(4);
  store.absorb_calibration({{50, 0}, {-40, 30}, {0, -60}, {1, 2}});
  store.absorb_white({0, 0});
  const Classification result = store.classify(observation(45, 5, 60));
  EXPECT_EQ(result.symbol.kind, protocol::SymbolKind::kData);
  EXPECT_EQ(result.symbol.data_index, 0);
  EXPECT_NEAR(result.distance, std::hypot(5.0, 5.0), 1e-9);
}

TEST(CalibrationStore, WhiteWinsWhenStrictlyCloser) {
  CalibrationStore store(2);
  store.absorb_calibration({{50, 0}, {-50, 0}});
  store.absorb_white({0, 0});
  const Classification result = store.classify(observation(2, 1, 60));
  EXPECT_EQ(result.symbol.kind, protocol::SymbolKind::kWhite);
}

TEST(CalibrationStore, RecalibrationReplacesReferences) {
  CalibrationStore store(2);
  store.absorb_calibration({{50, 0}, {-50, 0}});
  store.absorb_calibration({{10, 40}, {-10, -40}});
  ASSERT_TRUE(store.reference(0).has_value());
  EXPECT_DOUBLE_EQ(store.reference(0)->b, 40.0);
}

TEST(CalibrationStore, ConfidenceThresholdApplied) {
  ClassifierConfig config;
  config.confident_delta_e = 3.0;
  CalibrationStore store(2, config);
  store.absorb_calibration({{50, 0}, {-50, 0}});
  store.absorb_white({0, 0});
  EXPECT_TRUE(store.classify(observation(51, 1, 60)).confident);
  EXPECT_FALSE(store.classify(observation(40, 15, 60)).confident);
}

}  // namespace
}  // namespace colorbars::rx
