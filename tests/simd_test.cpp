// The simd kernel layer's contract is byte-identity: every compiled
// backend must reproduce the scalar reference bit for bit on every
// input it can see — including misaligned ROI starts, odd widths and
// vector-width remainders — so that runtime dispatch can never change a
// capture, a golden hash, or a decode. These tests prove it per kernel
// (exhaustively for the Rgb8→Lab chain, with every misalignment offset
// 0–31 for the row kernels, randomized frames for the rest), plus the
// capture-arena and buffer-pool-cap plumbing that rides on the layer.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "colorbars/camera/camera.hpp"
#include "colorbars/camera/profile.hpp"
#include "colorbars/color/srgb.hpp"
#include "colorbars/led/tri_led.hpp"
#include "colorbars/pipeline/buffer_pool.hpp"
#include "colorbars/protocol/symbols.hpp"
#include "colorbars/runtime/thread_pool.hpp"
#include "colorbars/rx/band_extractor.hpp"
#include "colorbars/rx/streaming.hpp"
#include "colorbars/simd/simd.hpp"
#include "colorbars/util/arena.hpp"
#include "colorbars/util/rng.hpp"

namespace colorbars {
namespace {

/// Restores the dispatched backend when a test scope ends.
class BackendGuard {
 public:
  BackendGuard() : saved_(simd::active_backend()) {}
  ~BackendGuard() { simd::set_backend(saved_); }
  BackendGuard(const BackendGuard&) = delete;
  BackendGuard& operator=(const BackendGuard&) = delete;

 private:
  simd::Backend saved_;
};

/// Every non-scalar backend this binary can actually run.
std::vector<simd::Backend> vector_backends() {
  std::vector<simd::Backend> backends;
  for (const simd::Backend backend :
       {simd::Backend::kSse42, simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::backend_supported(backend)) backends.push_back(backend);
  }
  return backends;
}

template <typename T>
bool bit_equal(const T& a, const T& b) {
  static_assert(std::is_trivially_copyable_v<T>);
  return std::memcmp(&a, &b, sizeof(T)) == 0;
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.

TEST(Simd, BackendProbeAndDispatchControls) {
  BackendGuard guard;
  EXPECT_TRUE(simd::backend_compiled(simd::Backend::kScalar));
  EXPECT_TRUE(simd::backend_supported(simd::Backend::kScalar));
  EXPECT_TRUE(simd::backend_supported(simd::active_backend()));

  EXPECT_TRUE(simd::set_backend(simd::Backend::kScalar));
  EXPECT_EQ(simd::active_backend(), simd::Backend::kScalar);

  for (const simd::Backend backend : vector_backends()) {
    EXPECT_TRUE(simd::set_backend(backend));
    EXPECT_EQ(simd::active_backend(), backend);
    EXPECT_STRNE(simd::backend_name(backend), simd::backend_name(simd::Backend::kScalar));
  }

  // An uncompiled backend is refused and leaves dispatch untouched.
  for (const simd::Backend backend :
       {simd::Backend::kSse42, simd::Backend::kAvx2, simd::Backend::kNeon}) {
    if (simd::backend_compiled(backend)) continue;
    const simd::Backend before = simd::active_backend();
    EXPECT_FALSE(simd::set_backend(backend));
    EXPECT_EQ(simd::active_backend(), before);
  }
}

// ---------------------------------------------------------------------------
// Kernel byte-identity vs the scalar reference.

TEST(Simd, Rgb8LabChainMatchesScalarExhaustively) {
  // Every (r, g, b) in 256^3, swept as 65536 rows of 256 pixels (b
  // varies within a row). The summed Lab/RGB row reduction must be
  // bit-equal per row, which pins every per-pixel LUT lookup, lerp and
  // accumulation step of the vector backends to the scalar chain.
  const std::vector<simd::Backend> backends = vector_backends();
  if (backends.empty()) GTEST_SKIP() << "no vector backend compiled/supported";
  BackendGuard guard;

  std::vector<color::Rgb8> row(256);
  for (int r = 0; r < 256; ++r) {
    for (int g = 0; g < 256; ++g) {
      for (int b = 0; b < 256; ++b) {
        row[static_cast<std::size_t>(b)] = {static_cast<std::uint8_t>(r),
                                            static_cast<std::uint8_t>(g),
                                            static_cast<std::uint8_t>(b)};
      }
      ASSERT_TRUE(simd::set_backend(simd::Backend::kScalar));
      simd::RowSums reference;
      simd::row_lab_rgb_sums(row.data(), 256, reference);
      for (const simd::Backend backend : backends) {
        ASSERT_TRUE(simd::set_backend(backend));
        simd::RowSums sums;
        simd::row_lab_rgb_sums(row.data(), 256, sums);
        ASSERT_TRUE(bit_equal(sums, reference))
            << simd::backend_name(backend) << " diverged at r=" << r << " g=" << g;
      }
    }
  }
}

TEST(Simd, RowSumsEveryMisalignmentOffsetAndOddWidth) {
  // ROI column ranges land the row pointer on arbitrary addresses and
  // widths; every offset 0–31 into a known pixel row, crossed with prime
  // and vector-width-straddling widths, must reduce bit-identically.
  const std::vector<simd::Backend> backends = vector_backends();
  if (backends.empty()) GTEST_SKIP() << "no vector backend compiled/supported";
  BackendGuard guard;

  util::Xoshiro256 rng(0x51dee);
  std::vector<color::Rgb8> pixels(256);
  for (auto& pixel : pixels) {
    pixel = {static_cast<std::uint8_t>(rng.below(256)),
             static_cast<std::uint8_t>(rng.below(256)),
             static_cast<std::uint8_t>(rng.below(256))};
  }

  const int widths[] = {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 97};
  for (int offset = 0; offset < 32; ++offset) {
    for (const int width : widths) {
      ASSERT_TRUE(simd::set_backend(simd::Backend::kScalar));
      simd::RowSums reference;
      simd::row_lab_rgb_sums(pixels.data() + offset, width, reference);
      for (const simd::Backend backend : backends) {
        ASSERT_TRUE(simd::set_backend(backend));
        simd::RowSums sums;
        simd::row_lab_rgb_sums(pixels.data() + offset, width, sums);
        ASSERT_TRUE(bit_equal(sums, reference))
            << simd::backend_name(backend) << " offset=" << offset << " width=" << width;
      }
    }
  }
}

TEST(Simd, DemosaicInteriorMatchesScalarOnRandomFrames) {
  const std::vector<simd::Backend> backends = vector_backends();
  if (backends.empty()) GTEST_SKIP() << "no vector backend compiled/supported";
  BackendGuard guard;

  util::Xoshiro256 rng(0xba7e2);
  const int shapes[][2] = {{3, 3}, {4, 5}, {5, 4}, {5, 7}, {8, 8},
                           {9, 33}, {16, 31}, {33, 65}, {64, 34}};
  for (const auto& shape : shapes) {
    const int rows = shape[0];
    const int columns = shape[1];
    std::vector<double> raw(static_cast<std::size_t>(rows) * columns);
    for (double& value : raw) value = rng.uniform(0.0, 1.0);

    const std::size_t out_size = raw.size() * 3;
    // Sentinel-filled outputs double as a border-untouched check.
    std::vector<double> reference(out_size, -7.0);
    ASSERT_TRUE(simd::set_backend(simd::Backend::kScalar));
    simd::demosaic_interior(raw.data(), rows, columns, reference.data());
    for (const simd::Backend backend : backends) {
      ASSERT_TRUE(simd::set_backend(backend));
      std::vector<double> out(out_size, -7.0);
      simd::demosaic_interior(raw.data(), rows, columns, out.data());
      ASSERT_EQ(std::memcmp(out.data(), reference.data(), out_size * sizeof(double)), 0)
          << simd::backend_name(backend) << " " << rows << "x" << columns;
    }
  }
}

TEST(Simd, VignetteShotSigmaDeltaEMatchScalarAtEveryOffset) {
  const std::vector<simd::Backend> backends = vector_backends();
  if (backends.empty()) GTEST_SKIP() << "no vector backend compiled/supported";
  BackendGuard guard;

  util::Xoshiro256 rng(0x7e57);
  constexpr int kColumns = 160;
  std::vector<double> col2(kColumns);
  for (double& value : col2) value = rng.uniform(0.0, 1.0);
  std::vector<double> signal(kColumns);
  for (double& value : signal) value = rng.uniform(-0.1, 1.2);  // negatives hit the clamp
  std::vector<double> ref_a(kColumns), ref_b(kColumns);
  for (int i = 0; i < kColumns; ++i) {
    ref_a[static_cast<std::size_t>(i)] = rng.uniform(-90.0, 90.0);
    ref_b[static_cast<std::size_t>(i)] = rng.uniform(-90.0, 90.0);
  }

  for (int offset = 0; offset < 32; ++offset) {
    for (const int width : {0, 1, 2, 3, 5, 8, 13, 16, 21, 32, 33, 64, 97}) {
      const int end = offset + width;
      ASSERT_LE(end, kColumns);
      for (const double strength : {0.0, 0.4}) {
        ASSERT_TRUE(simd::set_backend(simd::Backend::kScalar));
        std::vector<double> vignette_ref(kColumns, -1.0);
        simd::vignette_signal_span(col2.data(), offset, end, 0.37, strength, 0.8, 0.25,
                                   vignette_ref.data());
        std::vector<double> sigma_ref(static_cast<std::size_t>(width) + 1, -1.0);
        simd::shot_sigma_row(signal.data() + offset, width, 1.7, 5000.0, sigma_ref.data());
        std::vector<double> delta_ref(static_cast<std::size_t>(width) + 1, -1.0);
        simd::delta_e_ab_many(ref_a.data() + offset, ref_b.data() + offset, width, 12.5,
                              -33.25, delta_ref.data());

        for (const simd::Backend backend : backends) {
          ASSERT_TRUE(simd::set_backend(backend));
          std::vector<double> vignette(kColumns, -1.0);
          simd::vignette_signal_span(col2.data(), offset, end, 0.37, strength, 0.8, 0.25,
                                     vignette.data());
          ASSERT_EQ(std::memcmp(vignette.data(), vignette_ref.data(),
                                vignette.size() * sizeof(double)),
                    0)
              << simd::backend_name(backend) << " vignette offset=" << offset
              << " width=" << width << " strength=" << strength;

          std::vector<double> sigma(sigma_ref.size(), -1.0);
          simd::shot_sigma_row(signal.data() + offset, width, 1.7, 5000.0, sigma.data());
          ASSERT_EQ(
              std::memcmp(sigma.data(), sigma_ref.data(), sigma.size() * sizeof(double)), 0)
              << simd::backend_name(backend) << " sigma offset=" << offset
              << " width=" << width;

          std::vector<double> delta(delta_ref.size(), -1.0);
          simd::delta_e_ab_many(ref_a.data() + offset, ref_b.data() + offset, width, 12.5,
                                -33.25, delta.data());
          ASSERT_EQ(
              std::memcmp(delta.data(), delta_ref.data(), delta.size() * sizeof(double)), 0)
              << simd::backend_name(backend) << " deltaE offset=" << offset
              << " width=" << width;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// End-to-end byte-identity across backends and thread counts.

TEST(Simd, CaptureAndReductionIdenticalAcrossBackendsAndThreadCounts) {
  BackendGuard guard;
  // A shrunken Nexus-class profile keeps vignette (0.40) and both noise
  // terms in play while staying fast; 33 columns forces odd-width rows
  // through every kernel epilogue.
  camera::SensorProfile profile = camera::nexus5_profile();
  profile.rows = 96;
  profile.columns = 33;

  const led::TriLed led;
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  util::Xoshiro256 symbol_rng(0xfee1);
  std::vector<protocol::ChannelSymbol> slots;
  for (int i = 0; i < 40; ++i) {
    slots.push_back(protocol::ChannelSymbol::data(static_cast<int>(symbol_rng.below(8))));
  }
  const led::EmissionTrace trace = led.emit(protocol::drives_of(slots, constellation), 2000.0);

  const auto capture = [&] {
    camera::RollingShutterCamera camera(profile, channel::OpticalChannel{}, 0x5eed);
    return camera.capture_frame(trace, 0.001);
  };

  ASSERT_TRUE(simd::set_backend(simd::Backend::kScalar));
  const camera::Frame reference_frame = capture();
  const std::vector<rx::ScanlineColor> reference_lines =
      rx::reduce_to_scanlines(reference_frame, 3, 30);

  for (const simd::Backend backend : vector_backends()) {
    ASSERT_TRUE(simd::set_backend(backend));
    for (const unsigned threads : {1u, 2u, 8u}) {
      runtime::ThreadPool::set_shared_thread_count(threads);
      const camera::Frame frame = capture();
      EXPECT_EQ(frame.pixels, reference_frame.pixels)
          << simd::backend_name(backend) << " capture diverged at " << threads
          << " threads";
      const std::vector<rx::ScanlineColor> lines = rx::reduce_to_scanlines(frame, 3, 30);
      ASSERT_EQ(lines.size(), reference_lines.size());
      for (std::size_t i = 0; i < lines.size(); ++i) {
        ASSERT_TRUE(bit_equal(lines[i], reference_lines[i]))
            << simd::backend_name(backend) << " scanline " << i << " at " << threads
            << " threads";
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Capture arena.

TEST(Simd, ArenaSpansAreAlignedAndRecycle) {
  util::CaptureArena arena;
  const auto a = arena.allocate<double>(33);
  const auto b = arena.allocate<float>(7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % util::CaptureArena::kAlignment, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % util::CaptureArena::kAlignment, 0u);
  EXPECT_EQ(a.size(), 33u);
  EXPECT_EQ(b.size(), 7u);

  // The warm-up frame grows incrementally, so its reset coalesces to a
  // block sized for the whole frame; from then on same-shape frames are
  // pure reuse with zero growth.
  arena.reset();
  const std::size_t capacity = arena.capacity_bytes();
  EXPECT_GT(capacity, 0u);
  const auto c = arena.allocate<double>(33);
  const auto d = arena.allocate<float>(7);
  // Both spans now come from the one coalesced block, in order and
  // non-overlapping (33 doubles round up to 5 cache lines).
  EXPECT_GE(reinterpret_cast<std::uintptr_t>(d.data()),
            reinterpret_cast<std::uintptr_t>(c.data()) + 33 * sizeof(double));
  EXPECT_EQ(arena.capacity_bytes(), capacity);
  const long long grows_after_warmup = arena.stats().grows;

  arena.reset();
  const auto e = arena.allocate<double>(33);
  (void)arena.allocate<float>(7);
  EXPECT_EQ(e.data(), c.data());  // same storage handed back
  EXPECT_EQ(arena.capacity_bytes(), capacity);
  EXPECT_EQ(arena.stats().grows, grows_after_warmup);

  const util::CaptureArena::Stats& stats = arena.stats();
  EXPECT_EQ(stats.resets, 2);
  EXPECT_EQ(stats.reuse_hits, 1);  // the post-coalesce reset
  EXPECT_GT(stats.peak_bytes, 0u);
}

TEST(Simd, ArenaOverflowCoalescesOnReset) {
  util::CaptureArena arena;
  (void)arena.allocate<double>(8);  // small first block
  arena.reset();
  // Overflow the block: the frame still works (side blocks), and the
  // next reset coalesces so the frame after that is a single reuse hit.
  (void)arena.allocate<double>(8);
  const auto big = arena.allocate<double>(1000);
  EXPECT_EQ(big.size(), 1000u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(big.data()) % util::CaptureArena::kAlignment,
            0u);
  const long long grows_after_overflow = arena.stats().grows;
  EXPECT_GE(grows_after_overflow, 2);

  arena.reset();  // coalesce
  (void)arena.allocate<double>(8);
  (void)arena.allocate<double>(1000);
  EXPECT_EQ(arena.stats().grows, grows_after_overflow) << "coalesced block too small";
  arena.reset();
  EXPECT_EQ(arena.stats().reuse_hits, 2);  // first reset + post-coalesce one
  EXPECT_GE(arena.stats().peak_bytes, 1008 * sizeof(double));
}

// ---------------------------------------------------------------------------
// Buffer-pool retention cap.

TEST(Simd, BufferPoolCapBoundsRetainedBuffersUnderChurn) {
  pipeline::BufferPoolConfig config;
  config.max_retained_frames = 3;
  config.max_retained_scratch = 2;
  pipeline::BufferPool pool(config);

  // Churn like a scene whose lane set keeps changing: bursts of varying
  // width, all released back. Without the cap the free lists would grow
  // to the widest burst ever seen and stay there.
  for (int burst = 1; burst <= 8; ++burst) {
    std::vector<camera::Frame> frames;
    std::vector<camera::RenderScratch> scratch;
    for (int i = 0; i < burst; ++i) {
      frames.push_back(pool.acquire_frame());
      frames.back().resize(64, 32);
      scratch.push_back(pool.acquire_scratch());
    }
    for (auto& frame : frames) pool.release_frame(std::move(frame));
    for (auto& s : scratch) pool.release_scratch(std::move(s));
    EXPECT_LE(pool.retained_frames(), 3u) << "burst " << burst;
    EXPECT_LE(pool.retained_scratch(), 2u) << "burst " << burst;
  }

  const pipeline::BufferPoolStats stats = pool.stats();
  EXPECT_EQ(pool.retained_frames(), 3u);
  EXPECT_EQ(pool.retained_scratch(), 2u);
  EXPECT_GT(stats.frames_evicted, 0);
  EXPECT_GT(stats.scratch_evicted, 0);
  EXPECT_GT(stats.frame_hits, 0);  // the cap still leaves a working pool
  EXPECT_EQ(stats.outstanding_frames, 0);
  EXPECT_EQ(stats.outstanding_scratch, 0);

  // An uncapped pool keeps everything — the default behavior is intact.
  pipeline::BufferPool unbounded;
  std::vector<camera::Frame> frames;
  for (int i = 0; i < 8; ++i) frames.push_back(unbounded.acquire_frame());
  for (auto& frame : frames) unbounded.release_frame(std::move(frame));
  EXPECT_EQ(unbounded.retained_frames(), 8u);
  EXPECT_EQ(unbounded.stats().frames_evicted, 0);
}

// ---------------------------------------------------------------------------
// Streaming arena counters.

TEST(Simd, StreamingReceiverSurfacesArenaCounters) {
  rx::StreamingReceiver receiver(rx::ReceiverConfig{});
  camera::Frame frame;
  frame.resize(128, 32);
  frame.row_time_s = 1.0 / (2000.0 * 4.0);
  frame.exposure_s = frame.row_time_s;
  for (auto& pixel : frame.pixels) pixel = {200, 40, 90};

  for (int i = 0; i < 3; ++i) {
    frame.frame_index = i;
    frame.start_time_s = i * (1.0 / 30.0);
    receiver.push_frame(frame);
  }
  const rx::StreamingStats& stats = receiver.stats();
  EXPECT_EQ(stats.arena_resets, 3);
  // Frames are same-shaped, so after the first reduction the arena
  // serves every later frame from the same block.
  EXPECT_GE(stats.arena_reuse_hits, 2);
  EXPECT_GE(stats.arena_peak_bytes,
            static_cast<long long>(128 * sizeof(rx::ScanlineColor)));
}

}  // namespace
}  // namespace colorbars
