#include <gtest/gtest.h>

#include "colorbars/core/link.hpp"

namespace colorbars::core {
namespace {

TEST(LinkConfigKnobs, ClassifierPropagatesToReceiver) {
  LinkConfig config;
  config.classifier.matching_space = rx::MatchingSpace::kRgb;
  config.classifier.off_lightness = 22.0;
  const rx::ReceiverConfig receiver = config.receiver_config();
  EXPECT_EQ(receiver.classifier.matching_space, rx::MatchingSpace::kRgb);
  EXPECT_DOUBLE_EQ(receiver.classifier.off_lightness, 22.0);
}

TEST(LinkConfigKnobs, AblationFlagsPropagate) {
  LinkConfig config;
  config.enable_dephasing_pad = false;
  config.use_erasure_decoding = false;
  EXPECT_FALSE(config.transmitter_config().enable_dephasing_pad);
  EXPECT_FALSE(config.receiver_config().use_erasure_decoding);
}

TEST(LinkConfigKnobs, IlluminationRatioReachesBothSides) {
  LinkConfig config;
  config.illumination_ratio = 0.65;
  EXPECT_DOUBLE_EQ(config.transmitter_config().format.illumination_ratio, 0.65);
  EXPECT_DOUBLE_EQ(config.receiver_config().format.illumination_ratio, 0.65);
}

TEST(DeriveLinkCode, HigherOrderCarriesMoreBytesPerPacket) {
  // Same slot budget, more bits per symbol -> larger codewords.
  const auto csk8 = derive_link_code(csk::CskOrder::kCsk8, 3000, 30, 0.25, 0.8);
  const auto csk32 = derive_link_code(csk::CskOrder::kCsk32, 3000, 30, 0.25, 0.8);
  EXPECT_GT(csk32.n, csk8.n);
}

TEST(DeriveLinkCode, RateScalesCodewordSize) {
  const auto slow = derive_link_code(csk::CskOrder::kCsk8, 1000, 30, 0.25, 0.8);
  const auto fast = derive_link_code(csk::CskOrder::kCsk8, 4000, 30, 0.25, 0.8);
  EXPECT_GT(fast.n, slow.n);
  EXPECT_GT(fast.k, slow.k);
}

TEST(DeriveLinkCode, MoreIlluminationMeansFewerDataBytes) {
  const auto dense = derive_link_code(csk::CskOrder::kCsk8, 3000, 30, 0.25, 0.9);
  const auto sparse = derive_link_code(csk::CskOrder::kCsk8, 3000, 30, 0.25, 0.6);
  EXPECT_GT(dense.n, sparse.n);
}

}  // namespace
}  // namespace colorbars::core
