#include "colorbars/csk/constellation.hpp"

#include <gtest/gtest.h>

#include <set>

#include "colorbars/util/rng.hpp"

namespace colorbars::csk {
namespace {

class AllOrders : public ::testing::TestWithParam<CskOrder> {};

TEST_P(AllOrders, HasCorrectSymbolCount) {
  const Constellation constellation(GetParam());
  EXPECT_EQ(constellation.size(), symbol_count(GetParam()));
}

TEST_P(AllOrders, BitsMatchLog2OfOrder) {
  const Constellation constellation(GetParam());
  EXPECT_EQ(1 << constellation.bits(), constellation.size());
}

TEST_P(AllOrders, AllPointsInsideGamut) {
  const Constellation constellation(GetParam());
  for (const auto& point : constellation.points()) {
    EXPECT_TRUE(constellation.gamut().contains(point, 1e-9));
  }
}

TEST_P(AllOrders, PointsAreDistinct) {
  const Constellation constellation(GetParam());
  for (int i = 0; i < constellation.size(); ++i) {
    for (int j = i + 1; j < constellation.size(); ++j) {
      EXPECT_GT(color::xy_distance(constellation.point(i), constellation.point(j)), 1e-3)
          << "points " << i << "," << j;
    }
  }
}

TEST_P(AllOrders, NearestRecoversEveryExactPoint) {
  const Constellation constellation(GetParam());
  for (int i = 0; i < constellation.size(); ++i) {
    EXPECT_EQ(constellation.nearest(constellation.point(i)), i);
  }
}

TEST_P(AllOrders, NearestRecoversPerturbedPoints) {
  const Constellation constellation(GetParam());
  const double margin = constellation.min_pairwise_distance() / 2.5;
  util::Xoshiro256 rng(static_cast<std::uint64_t>(constellation.size()));
  for (int i = 0; i < constellation.size(); ++i) {
    for (int trial = 0; trial < 10; ++trial) {
      const double angle = rng.uniform(0.0, 6.28318);
      const color::Chromaticity perturbed{
          constellation.point(i).x + margin * std::cos(angle),
          constellation.point(i).y + margin * std::sin(angle)};
      EXPECT_EQ(constellation.nearest(perturbed), i);
    }
  }
}

TEST_P(AllOrders, ContainsGamutVertices) {
  // Every order keeps the three primaries as symbols (maximum-saturation
  // points always belong to a max-min packing).
  const Constellation constellation(GetParam());
  const auto& gamut = constellation.gamut();
  for (const auto& vertex : {gamut.red(), gamut.green(), gamut.blue()}) {
    bool found = false;
    for (const auto& point : constellation.points()) {
      if (color::xy_distance(point, vertex) < 1e-9) found = true;
    }
    EXPECT_TRUE(found);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, AllOrders,
                         ::testing::Values(CskOrder::kCsk4, CskOrder::kCsk8,
                                           CskOrder::kCsk16, CskOrder::kCsk32),
                         [](const auto& info) {
                           return "Csk" + std::to_string(static_cast<int>(info.param));
                         });

TEST(Constellation, MinDistanceShrinksWithOrder) {
  double previous = 1e9;
  for (const CskOrder order : all_orders()) {
    const Constellation constellation(order);
    const double distance = constellation.min_pairwise_distance();
    EXPECT_LT(distance, previous) << "order " << static_cast<int>(order);
    previous = distance;
  }
}

TEST(Constellation, Csk4IsVerticesPlusCentroid) {
  const Constellation constellation(CskOrder::kCsk4);
  const auto& gamut = constellation.gamut();
  EXPECT_NEAR(color::xy_distance(constellation.point(3), gamut.centroid()), 0.0, 1e-9);
}

TEST(Constellation, BitsPerSymbolValues) {
  EXPECT_EQ(bits_per_symbol(CskOrder::kCsk4), 2);
  EXPECT_EQ(bits_per_symbol(CskOrder::kCsk8), 3);
  EXPECT_EQ(bits_per_symbol(CskOrder::kCsk16), 4);
  EXPECT_EQ(bits_per_symbol(CskOrder::kCsk32), 5);
}

TEST(MaxminPacking, ProducesRequestedCount) {
  const auto points = maxmin_packing(color::default_led_gamut(), 12);
  EXPECT_EQ(points.size(), 12u);
}

TEST(MaxminPacking, IsDeterministic) {
  const auto a = maxmin_packing(color::default_led_gamut(), 16);
  const auto b = maxmin_packing(color::default_led_gamut(), 16);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(MaxminPacking, MinDistanceDecreasesMonotonically) {
  // Adding points can only shrink (or keep) the minimum pairwise gap.
  const auto& gamut = color::default_led_gamut();
  double previous = 1e9;
  for (const int count : {4, 8, 16, 32, 64}) {
    const auto points = maxmin_packing(gamut, count);
    double min_distance = 1e9;
    for (std::size_t i = 0; i < points.size(); ++i) {
      for (std::size_t j = i + 1; j < points.size(); ++j) {
        min_distance = std::min(min_distance, color::xy_distance(points[i], points[j]));
      }
    }
    EXPECT_LE(min_distance, previous + 1e-12);
    previous = min_distance;
  }
}

TEST(MaxminPacking, RejectsBadArguments) {
  EXPECT_THROW((void)maxmin_packing(color::default_led_gamut(), 2), std::invalid_argument);
  EXPECT_THROW((void)maxmin_packing(color::default_led_gamut(), 8, 1),
               std::invalid_argument);
}

TEST(MaxminPacking, PackingBeatsNaiveGridAtMinDistance) {
  // Quality check: the 32-point packing should be clearly better spread
  // than random placement. Compare against the expected random min gap.
  const auto points = maxmin_packing(color::default_led_gamut(), 32);
  double min_distance = 1e9;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      min_distance = std::min(min_distance, color::xy_distance(points[i], points[j]));
    }
  }
  EXPECT_GT(min_distance, 0.05);
}

}  // namespace
}  // namespace colorbars::csk
