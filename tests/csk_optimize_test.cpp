#include <gtest/gtest.h>

#include "colorbars/csk/constellation.hpp"

namespace colorbars::csk {
namespace {

double min_distance(const std::vector<color::Chromaticity>& points) {
  double best = 1e9;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      best = std::min(best, color::xy_distance(points[i], points[j]));
    }
  }
  return best;
}

class OptimizeAllOrders : public ::testing::TestWithParam<CskOrder> {};

TEST_P(OptimizeAllOrders, NeverReducesMinimumDistance) {
  const Constellation standard(GetParam());
  const auto optimized =
      optimize_constellation(standard.gamut(), standard.points(), 150);
  EXPECT_GE(min_distance(optimized), min_distance(standard.points()) - 1e-12);
}

TEST_P(OptimizeAllOrders, KeepsAllPointsInsideGamut) {
  const Constellation standard(GetParam());
  const auto optimized =
      optimize_constellation(standard.gamut(), standard.points(), 150);
  for (const auto& point : optimized) {
    EXPECT_TRUE(standard.gamut().contains(point, 1e-9));
  }
}

TEST_P(OptimizeAllOrders, KeepsGamutVerticesAnchored) {
  const Constellation standard(GetParam());
  const auto optimized =
      optimize_constellation(standard.gamut(), standard.points(), 150);
  const auto& gamut = standard.gamut();
  for (const auto& vertex : {gamut.red(), gamut.green(), gamut.blue()}) {
    bool found = false;
    for (const auto& point : optimized) {
      if (color::xy_distance(point, vertex) < 1e-9) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_P(OptimizeAllOrders, PreservesPointCount) {
  const Constellation standard(GetParam());
  const auto optimized =
      optimize_constellation(standard.gamut(), standard.points(), 150);
  EXPECT_EQ(optimized.size(), standard.points().size());
}

TEST_P(OptimizeAllOrders, IsDeterministic) {
  const Constellation standard(GetParam());
  const auto a = optimize_constellation(standard.gamut(), standard.points(), 100);
  const auto b = optimize_constellation(standard.gamut(), standard.points(), 100);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

INSTANTIATE_TEST_SUITE_P(Orders, OptimizeAllOrders,
                         ::testing::Values(CskOrder::kCsk4, CskOrder::kCsk8,
                                           CskOrder::kCsk16, CskOrder::kCsk32),
                         [](const auto& info) {
                           return "Csk" + std::to_string(static_cast<int>(info.param));
                         });

TEST(Optimize, ImprovesTheStandardEightCskLayout) {
  // The 802.15.7-style 8-CSK lattice is known to be suboptimal for
  // max-min distance; the optimizer must find real headroom.
  const Constellation standard(CskOrder::kCsk8);
  const auto optimized =
      optimize_constellation(standard.gamut(), standard.points(), 400);
  EXPECT_GT(min_distance(optimized), 1.2 * min_distance(standard.points()));
}

TEST(Optimize, TinySetsPassThrough) {
  const auto& gamut = color::default_led_gamut();
  const std::vector<color::Chromaticity> three{gamut.red(), gamut.green(), gamut.blue()};
  EXPECT_EQ(optimize_constellation(gamut, three, 50), three);
}

}  // namespace
}  // namespace colorbars::csk
