// Reproduces Fig. 11: goodput (RS-recovered payload bits per second,
// packet overhead, calibration packets, illumination symbols and
// header-loss discards all included) vs symbol frequency for all CSK
// orders on both camera models.
//
// Paper shape: goodput peaks at 16-CSK / 4 kHz (~5.2 kbps Nexus 5,
// ~2.5 kbps iPhone 5S); at 32-CSK the higher SER begins to *reduce*
// goodput below the 16-CSK curve; the iPhone's larger gap both loses
// more packets and forces more parity, lowering its whole family of
// curves.

#include "bench_util.hpp"
#include "colorbars/core/link.hpp"

using namespace colorbars;

int main() {
  bench::print_header("Fig. 11: goodput (kbps) vs symbol frequency");
  bench::JsonReport report("fig11_goodput");

  for (const auto& profile : {camera::nexus5_profile(), camera::iphone5s_profile()}) {
    std::printf("\n%s\n", profile.name.c_str());
    std::printf("%-8s", "");
    for (const double frequency : bench::paper_frequencies()) {
      std::printf(" %9.0fHz", frequency);
    }
    std::printf("\n");
    for (const csk::CskOrder order : csk::all_orders()) {
      std::printf("%-8s", bench::order_name(order));
      for (const double frequency : bench::paper_frequencies()) {
        core::LinkConfig config;
        config.order = order;
        config.symbol_rate_hz = frequency;
        config.profile = profile;
        config.seed = 0xf11 + static_cast<std::uint64_t>(frequency) +
                      (static_cast<std::uint64_t>(order) << 20);
        core::LinkSimulator sim(config);
        // 3 s per point, split into parallel trials on derived seeds.
        const core::GoodputBatchResult batch = sim.run_goodput_trials(2, 1.5);
        std::printf(" %9.2fkb", batch.goodput_bps.mean / 1000.0);
        report.add_row()
            .label("device", profile.name)
            .label("order", bench::order_name(order))
            .metric("symbol_rate_hz", frequency)
            .metric("goodput_bps_mean", batch.goodput_bps.mean)
            .metric("goodput_bps_stddev", batch.goodput_bps.stddev);
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nExpected shape: grows with frequency; peak at CSK16/4kHz (~5 kbps\n"
      "Nexus-class, ~2.5 kbps iPhone-class); CSK32 falls at or below CSK16 at\n"
      "high frequency as its SER overwhelms the code.\n");
  return 0;
}
