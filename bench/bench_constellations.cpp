// Reproduces Fig. 1(e) and 1(f): the 8-CSK and 16-CSK constellation
// designs in the CIE 1931 xy plane (plus the 4- and 32-CSK sets the
// evaluation uses). Prints each symbol's chromaticity and the design's
// minimum inter-symbol distance — the quantity the 802.15.7 designs
// maximize.

#include "bench_util.hpp"
#include "colorbars/csk/mapper.hpp"

using namespace colorbars;

int main() {
  bench::print_header(
      "Fig. 1(e)/1(f): CSK constellation designs (CIE 1931 xy coordinates)");

  for (const csk::CskOrder order : csk::all_orders()) {
    const csk::Constellation constellation(order);
    const csk::SymbolMapper mapper(constellation);
    std::printf("\n%s (%d symbols, %d bits/symbol)\n", bench::order_name(order),
                constellation.size(), constellation.bits());
    std::printf("  %-6s %-8s %-8s %s\n", "sym", "x", "y", "bit label");
    for (int i = 0; i < constellation.size(); ++i) {
      const color::Chromaticity& point = constellation.point(i);
      std::printf("  %-6d %-8.4f %-8.4f 0b", i, point.x, point.y);
      for (int bit = constellation.bits() - 1; bit >= 0; --bit) {
        std::printf("%u", (mapper.label(i) >> bit) & 1u);
      }
      std::printf("\n");
    }
    std::printf("  min inter-symbol distance: %.4f   mean neighbor Hamming: %.2f\n",
                constellation.min_pairwise_distance(),
                mapper.mean_neighbor_hamming(constellation));
  }

  std::printf(
      "\nExpected shape: min distance shrinks as the order grows (4 > 8 > 16 > 32),\n"
      "matching the paper's Fig. 1 layouts inside the tri-LED gamut triangle.\n");
  return 0;
}
