// Reproduces Fig. 10: raw throughput (no error correction; observed data
// symbols x bits per symbol, illumination symbols excluded) vs symbol
// frequency for all CSK orders on both camera models.
//
// Paper shape: throughput grows with both frequency and order; maxima at
// 32-CSK / 4 kHz are > 11 kbps (Nexus 5) and > 9 kbps (iPhone 5S); the
// iPhone trails the Nexus because of its larger inter-frame loss.

#include "bench_util.hpp"
#include "colorbars/core/link.hpp"

using namespace colorbars;

int main() {
  bench::print_header("Fig. 10: raw throughput (kbps) vs symbol frequency");
  bench::JsonReport report("fig10_throughput");

  for (const auto& profile : {camera::nexus5_profile(), camera::iphone5s_profile()}) {
    std::printf("\n%s\n", profile.name.c_str());
    std::printf("%-8s", "");
    for (const double frequency : bench::paper_frequencies()) {
      std::printf(" %9.0fHz", frequency);
    }
    std::printf("\n");
    for (const csk::CskOrder order : csk::all_orders()) {
      std::printf("%-8s", bench::order_name(order));
      for (const double frequency : bench::paper_frequencies()) {
        core::LinkConfig config;
        config.order = order;
        config.symbol_rate_hz = frequency;
        config.profile = profile;
        config.seed = 0xf10 + static_cast<std::uint64_t>(frequency) +
                      (static_cast<std::uint64_t>(order) << 20);
        core::LinkSimulator sim(config);
        // 2 s per point, split into parallel trials on derived seeds.
        const core::ThroughputBatchResult batch = sim.run_throughput_trials(2, 1.0);
        std::printf(" %9.2fkb", batch.throughput_bps.mean / 1000.0);
        report.add_row()
            .label("device", profile.name)
            .label("order", bench::order_name(order))
            .metric("symbol_rate_hz", frequency)
            .metric("throughput_bps_mean", batch.throughput_bps.mean)
            .metric("throughput_bps_stddev", batch.throughput_bps.stddev);
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nExpected shape: rises with frequency and order; ~11+ kbps at CSK32/4kHz on\n"
      "the Nexus-class camera and ~9+ kbps on the iPhone-class camera.\n");
  return 0;
}
