#pragma once

// Shared helpers for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper and prints it in a plain
// text layout comparable to the published one.

#include <cstdio>
#include <string>
#include <vector>

#include "colorbars/csk/constellation.hpp"

namespace colorbars::bench {

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const char* order_name(csk::CskOrder order) {
  switch (order) {
    case csk::CskOrder::kCsk4: return "CSK4";
    case csk::CskOrder::kCsk8: return "CSK8";
    case csk::CskOrder::kCsk16: return "CSK16";
    case csk::CskOrder::kCsk32: return "CSK32";
  }
  return "?";
}

inline const std::vector<double>& paper_frequencies() {
  static const std::vector<double> frequencies{1000, 2000, 3000, 4000};
  return frequencies;
}

}  // namespace colorbars::bench
