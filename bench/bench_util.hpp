#pragma once

// Shared helpers for the reproduction benches. Each bench binary
// regenerates one table or figure of the paper and prints it in a plain
// text layout comparable to the published one.

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <string>
#include <system_error>
#include <vector>

#include "colorbars/csk/constellation.hpp"

namespace colorbars::bench {

/// Canonical machine-readable output path of a bench: every bench
/// binary mirrors its table into BENCH_<name>.json, so the perf
/// trajectory is diffable across commits. The file lands in the working
/// directory unless COLORBARS_BENCH_DIR is set, in which case that
/// directory is created (if needed) and used instead — CI sets it to
/// collect every bench's JSON into one artifact directory.
inline std::string bench_json_path(const std::string& name) {
  const std::string file = "BENCH_" + name + ".json";
  const char* dir = std::getenv("COLORBARS_BENCH_DIR");
  if (dir == nullptr || *dir == '\0') return file;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort; open reports failure
  return (std::filesystem::path(dir) / file).string();
}

inline std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";  // JSON has no NaN/inf
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", value);
  return buf;
}

/// Row-oriented JSON emitter shared by the fig/extension benches. Usage:
///
///   bench::JsonReport report("fig9_ser");
///   report.add_row().label("device", "Nexus 5").metric("ser", 0.02);
///   ...
///   report.write();  // -> BENCH_fig9_ser.json (also runs at destruction)
class JsonReport {
 public:
  explicit JsonReport(std::string name) : name_(std::move(name)) {}
  ~JsonReport() {
    if (!written_) write();
  }
  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  class Row {
   public:
    Row& label(const std::string& key, const std::string& value) {
      fields_.push_back("\"" + json_escape(key) + "\": \"" + json_escape(value) + "\"");
      return *this;
    }
    Row& metric(const std::string& key, double value) {
      fields_.push_back("\"" + json_escape(key) + "\": " + json_number(value));
      return *this;
    }

   private:
    friend class JsonReport;
    std::vector<std::string> fields_;
  };

  /// Returned reference stays valid across later add_row calls.
  Row& add_row() { return rows_.emplace_back(); }

  [[nodiscard]] std::string path() const { return bench_json_path(name_); }

  void write() {
    written_ = true;
    // Write-then-rename so the report appears atomically: with the
    // trial service several processes share COLORBARS_BENCH_DIR, and a
    // reader (or a crashed sibling's leftover) must never see a
    // half-written file. The temp name carries the pid so concurrent
    // writers of the same bench cannot collide; rename() within one
    // directory is atomic on POSIX.
    const std::string final_path = path();
    const std::string temp_path =
        final_path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    std::FILE* file = std::fopen(temp_path.c_str(), "w");
    if (file == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", temp_path.c_str());
      return;
    }
    std::fprintf(file, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n",
                 json_escape(name_).c_str());
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      std::string row = "    {";
      const auto& fields = rows_[i].fields_;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        row += fields[f];
        if (f + 1 < fields.size()) row += ", ";
      }
      row += i + 1 < rows_.size() ? "},\n" : "}\n";
      std::fputs(row.c_str(), file);
    }
    std::fputs("  ]\n}\n", file);
    std::fclose(file);
    if (std::rename(temp_path.c_str(), final_path.c_str()) != 0) {
      std::fprintf(stderr, "bench: cannot rename %s -> %s\n", temp_path.c_str(),
                   final_path.c_str());
      std::remove(temp_path.c_str());
      return;
    }
    std::printf("\n[wrote %s]\n", final_path.c_str());
  }

 private:
  std::string name_;
  std::deque<Row> rows_;
  bool written_ = false;
};

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const char* order_name(csk::CskOrder order) {
  switch (order) {
    case csk::CskOrder::kCsk4: return "CSK4";
    case csk::CskOrder::kCsk8: return "CSK8";
    case csk::CskOrder::kCsk16: return "CSK16";
    case csk::CskOrder::kCsk32: return "CSK32";
    case csk::CskOrder::kCsk64: return "CSK64";
  }
  return "?";
}

inline const std::vector<double>& paper_frequencies() {
  static const std::vector<double> frequencies{1000, 2000, 3000, 4000};
  return frequencies;
}

}  // namespace colorbars::bench
