// Reproduces Table 1: average symbols received per second at 1-4 kHz
// transmission rates and the resulting average inter-frame loss ratio
// for the Nexus 5 and iPhone 5S camera models.
//
// Paper values for comparison:
//   Nexus 5:   772.84 / 1506.11 / 2352.65 / 3060.67  -> avg loss 0.2312
//   iPhone 5S: 640.55 / 1263.56 / 1887.73 / 2431.01  -> avg loss 0.3727

#include "bench_util.hpp"
#include "colorbars/core/link.hpp"

using namespace colorbars;

int main() {
  bench::print_header("Table 1: symbols received per second and inter-frame loss ratio");

  std::printf("%-10s", "device");
  for (const double frequency : bench::paper_frequencies()) {
    std::printf(" %9.0fHz", frequency);
  }
  std::printf("  avg loss ratio (paper)\n");

  bench::JsonReport report("table1_loss");
  for (const auto& profile : {camera::nexus5_profile(), camera::iphone5s_profile()}) {
    std::printf("%-10s", profile.name.c_str());
    double loss_total = 0.0;
    for (const double frequency : bench::paper_frequencies()) {
      core::LinkConfig config;
      config.order = csk::CskOrder::kCsk8;
      config.symbol_rate_hz = frequency;
      config.profile = profile;
      core::LinkSimulator sim(config);
      const int symbols = static_cast<int>(frequency * 3.0);  // 3 s of symbols
      const core::SerResult result = sim.run_ser(symbols);
      const double received_per_second =
          frequency * static_cast<double>(result.symbols_observed) /
          static_cast<double>(result.symbols_sent);
      loss_total += result.inter_frame_loss_ratio;
      std::printf(" %11.2f", received_per_second);
      report.add_row()
          .label("device", profile.name)
          .metric("symbol_rate_hz", frequency)
          .metric("received_per_second", received_per_second)
          .metric("loss_ratio", result.inter_frame_loss_ratio);
    }
    std::printf("  %.4f (%.4f)\n", loss_total / 4.0, profile.inter_frame_loss_ratio);
  }

  std::printf(
      "\nExpected shape: received rate ~ (1 - l) * S for both devices; the iPhone\n"
      "loses a larger fraction per frame gap than the Nexus (0.37 vs 0.23).\n");
  return 0;
}
