// Extension bench: photodiode/solar-cell frontend vs the rolling-shutter
// camera across a symbol-rate sweep. The camera's rate ceiling is
// geometric — one symbol must span at least min_band_rows scanlines, so
// past ~4.5 kHz (ideal profile) the bands thin out and the decode
// collapses — and a quarter of the slots die in the inter-frame gap at
// any rate. The photodiode array has neither limit: no raster, no gap,
// rate bounded only by the ADC sampling chain. Same transmitter, same
// coding stack, same classifier back half; only LinkConfig::frontend
// differs.
//
// Acceptance: the photodiode frontend sustains a symbol rate strictly
// above the camera's highest viable rate at SER <= target while
// observing (nearly) every slot.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "colorbars/core/link.hpp"

using namespace colorbars;

namespace {

constexpr double kSerTarget = 0.05;
/// A frontend must actually see most of the slots for its SER to mean
/// anything (SER is measured over observed slots only; the camera's
/// gap loss is ~25%, so a healthy camera point sits near 0.75).
constexpr double kMinObservedFraction = 0.5;

struct SweepPoint {
  double rate_hz = 0.0;
  double ser = 0.0;
  double observed_fraction = 0.0;
  double loss_ratio = 0.0;
  bool viable = false;
};

SweepPoint measure(frontend::FrontendKind kind, double rate_hz) {
  core::LinkConfig config;
  config.profile = camera::ideal_profile();
  config.frontend = kind;
  config.symbol_rate_hz = rate_hz;
  // Let the transmitter hardware chase the sweep — the stock
  // BeagleBone-class cap would clip the upper rates for both frontends.
  config.led.max_symbol_rate_hz = 64000.0;
  config.seed = 0x501a25ULL ^ static_cast<std::uint64_t>(rate_hz);

  core::LinkSimulator sim(config);
  const core::SerBatchResult batch = sim.run_ser_trials(3, 1500);
  long long sent = 0;
  long long observed = 0;
  long long errors = 0;
  for (const core::SerResult& trial : batch.trials) {
    sent += trial.symbols_sent;
    observed += trial.symbols_observed;
    errors += trial.symbol_errors;
  }
  SweepPoint point;
  point.rate_hz = rate_hz;
  point.ser = observed > 0 ? static_cast<double>(errors) / static_cast<double>(observed)
                           : 1.0;
  point.observed_fraction =
      sent > 0 ? static_cast<double>(observed) / static_cast<double>(sent) : 0.0;
  point.loss_ratio = batch.inter_frame_loss_ratio.mean;
  point.viable =
      point.ser <= kSerTarget && point.observed_fraction >= kMinObservedFraction;
  return point;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: photodiode (solar-cell) frontend vs rolling-shutter camera");
  bench::JsonReport report("extension_solar");

  const std::vector<double> rates = {2000.0, 3000.0, 4000.0, 6000.0,
                                     8000.0, 16000.0, 32000.0};
  const int bits_per_symbol = 3;  // CSK-8

  std::printf("%9s | %28s | %28s\n", "", "camera (rolling shutter)", "photodiode array");
  std::printf("%9s | %8s %9s %8s | %8s %9s %8s\n", "rate", "SER", "observed",
              "viable", "SER", "observed", "viable");
  double camera_best = 0.0;
  double pd_best = 0.0;
  for (const double rate : rates) {
    const SweepPoint camera = measure(frontend::FrontendKind::kCamera, rate);
    const SweepPoint pd = measure(frontend::FrontendKind::kPhotodiode, rate);
    if (camera.viable) camera_best = rate;
    if (pd.viable) pd_best = rate;
    std::printf("%7.0f/s | %8.4f %8.1f%% %8s | %8.4f %8.1f%% %8s\n", rate,
                camera.ser, 100.0 * camera.observed_fraction,
                camera.viable ? "yes" : "no", pd.ser,
                100.0 * pd.observed_fraction, pd.viable ? "yes" : "no");
    for (const SweepPoint* point : {&camera, &pd}) {
      report.add_row()
          .label("frontend", point == &camera ? "camera" : "photodiode")
          .metric("symbol_rate_hz", point->rate_hz)
          .metric("ser", point->ser)
          .metric("observed_fraction", point->observed_fraction)
          .metric("inter_frame_loss_ratio", point->loss_ratio)
          .metric("viable", point->viable ? 1.0 : 0.0)
          .metric("raw_bps",
                  point->rate_hz * bits_per_symbol * point->observed_fraction *
                      (point->viable ? 1.0 : 0.0));
    }
  }

  std::printf("\ncamera ceiling: %.0f sym/s   photodiode: %.0f sym/s\n", camera_best,
              pd_best);
  report.add_row()
      .label("summary", "ceiling")
      .metric("camera_max_viable_rate_hz", camera_best)
      .metric("pd_max_viable_rate_hz", pd_best);

  // Acceptance: the pd frontend must push strictly past the camera's
  // rolling-shutter ceiling.
  if (pd_best > camera_best && camera_best > 0.0) {
    std::printf("acceptance: PASS — photodiode sustains %.1fx the camera ceiling\n",
                pd_best / camera_best);
  } else {
    std::printf("acceptance: FAIL — photodiode does not clear the camera ceiling\n");
    return 1;
  }
  return 0;
}
