// Extension bench: the sharded trial service (colorbars::svc) vs the
// sequential in-process reference on a fixed SER grid.
//
// Two claims are measured:
//
//  1. Correctness (hard gate, any hardware): the 2-worker, 4-worker and
//     crash-injected 2-worker runs must be BYTE-identical to the
//     sequential run — same trial rows, same aggregates, to the last
//     bit. Any divergence fails the bench.
//  2. Throughput (gated on >= 4 hardware threads): with per-process
//     compute pinned to one thread (COLORBARS_THREADS=1), 4 workers
//     must finish the grid > 1.5x faster than the sequential run. On
//     smaller machines the speedup is still reported but not enforced —
//     worker processes cannot beat wall-clock on cores that don't exist.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "colorbars/svc/json.hpp"
#include "colorbars/svc/service.hpp"
#include "colorbars/svc/sweep.hpp"

using namespace colorbars;

namespace {

svc::SweepSpec grid_spec() {
  svc::SweepSpec spec;
  spec.trials_per_job = 1;  // 16 jobs: enough to interleave across 4 workers
  for (const csk::CskOrder order : {csk::CskOrder::kCsk8, csk::CskOrder::kCsk16}) {
    for (const double frequency : {1000.0, 2000.0}) {
      svc::SweepPoint point;
      point.config.order = order;
      point.config.symbol_rate_hz = frequency;
      point.config.seed = 0x99d1 + static_cast<std::uint64_t>(frequency) +
                          (static_cast<std::uint64_t>(order) << 20);
      point.kind = svc::TrialKind::kSer;
      point.trials = 4;
      point.symbols_per_trial = static_cast<int>(frequency * 0.6);
      spec.points.push_back(std::move(point));
    }
  }
  return spec;
}

/// Exact-token serialization of every trial row and aggregate: equal
/// strings mean equal bytes, not equal-within-epsilon.
std::string fingerprint(const svc::SweepSpec& spec,
                        const std::vector<svc::PointResult>& results) {
  std::string out;
  for (std::size_t i = 0; i < results.size(); ++i) {
    svc::JobResultMessage message;
    message.trials_kind = spec.points[i].kind;
    message.trials = results[i].trials;
    out += svc::encode_job_result(message);
    out += svc::Json::number(results[i].primary.mean).dump();
    out += svc::Json::number(results[i].primary.stddev).dump();
    out += svc::Json::number(results[i].loss_ratio.mean).dump();
    out += '\n';
  }
  return out;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  // Workers inherit the environment, so the single-thread pin below
  // reaches them too; set it before anything sizes a thread pool.
  ::setenv("COLORBARS_THREADS", "1", 1);
  svc::maybe_run_worker();  // this binary is its own grid worker

  bench::print_header("Extension: sharded trial service vs sequential reference");
  bench::JsonReport report("extension_grid");

  const svc::SweepSpec spec = grid_spec();
  std::printf("grid: %zu points x 4 trials, 1 trial/job, COLORBARS_THREADS=1\n\n",
              spec.points.size());

  auto start = std::chrono::steady_clock::now();
  const std::vector<svc::PointResult> reference = svc::run_sweep_sequential(spec);
  const double sequential_s = seconds_since(start);
  const std::string reference_print = fingerprint(spec, reference);
  std::printf("%-24s %8.2fs\n", "sequential", sequential_s);
  report.add_row()
      .label("mode", "sequential")
      .metric("workers", 0)
      .metric("wall_time_s", sequential_s);

  struct Leg {
    const char* name;
    int workers;
    bool inject_crash;
  };
  const Leg legs[] = {
      {"2 workers", 2, false},
      {"4 workers", 4, false},
      {"2 workers + crash", 2, true},
  };

  bool identical = true;
  double four_worker_s = 0.0;
  for (const Leg& leg : legs) {
    if (leg.inject_crash) ::setenv("COLORBARS_SVC_CRASH_JOB", "0", 1);
    svc::ServiceConfig service;
    service.workers = leg.workers;
    service.respawn_backoff_s = 0.02;
    svc::SvcStats stats;
    start = std::chrono::steady_clock::now();
    const std::vector<svc::PointResult> results =
        svc::run_sweep(spec, service, &stats);
    const double wall_s = seconds_since(start);
    if (leg.inject_crash) ::unsetenv("COLORBARS_SVC_CRASH_JOB");
    if (leg.workers == 4 && !leg.inject_crash) four_worker_s = wall_s;

    const bool matches = fingerprint(spec, results) == reference_print;
    identical = identical && matches;
    std::printf("%-24s %8.2fs  speedup %4.2fx  retries %lld  respawns %lld  %s\n",
                leg.name, wall_s, sequential_s / wall_s, stats.retries,
                stats.respawns, matches ? "byte-identical" : "DIVERGED");
    report.add_row()
        .label("mode", leg.name)
        .metric("workers", leg.workers)
        .metric("wall_time_s", wall_s)
        .metric("speedup", sequential_s / wall_s)
        .metric("jobs", static_cast<double>(stats.jobs_total))
        .metric("retries", static_cast<double>(stats.retries))
        .metric("respawns", static_cast<double>(stats.respawns))
        .metric("max_queue_depth", static_cast<double>(stats.max_queue_depth))
        .metric("bytes_sent", static_cast<double>(stats.bytes_sent))
        .metric("bytes_received", static_cast<double>(stats.bytes_received))
        .metric("byte_identical", matches ? 1 : 0);
  }

  // Acceptance: identity is unconditional; the speedup gate needs the
  // hardware to exist.
  const unsigned cores = std::thread::hardware_concurrency();
  const double speedup = four_worker_s > 0.0 ? sequential_s / four_worker_s : 0.0;
  const bool speedup_gated = cores >= 4;
  const bool speedup_ok = !speedup_gated || speedup > 1.5;
  std::printf("\nidentity: %s\n", identical ? "ok" : "FAIL");
  if (speedup_gated) {
    std::printf("speedup @4 workers: %.2fx (need > 1.5x) -> %s\n", speedup,
                speedup_ok ? "ok" : "FAIL");
  } else {
    std::printf("speedup @4 workers: %.2fx (gate skipped: %u hardware threads)\n",
                speedup, cores);
  }
  const bool pass = identical && speedup_ok;
  std::printf("acceptance: %s\n", pass ? "PASS" : "FAIL");
  report.add_row()
      .label("mode", "acceptance")
      .metric("byte_identical", identical ? 1 : 0)
      .metric("speedup_4_workers", speedup)
      .metric("speedup_gate_active", speedup_gated ? 1 : 0)
      .metric("hardware_threads", cores)
      .metric("pass", pass ? 1 : 0);
  report.write();
  return pass ? 0 : 1;
}
