// Reproduces the paper's motivating comparison (§1, §2.1, §9): the
// prior rolling-shutter modulation schemes — OOK and FSK (the
// RollingLight-class baselines reporting ~11.32 and ~1.25 bytes/sec) —
// against ColorBars' CSK link, all over the same simulated camera.

#include "bench_util.hpp"
#include "colorbars/baseline/fsk.hpp"
#include "colorbars/baseline/ook.hpp"
#include "colorbars/core/link.hpp"

using namespace colorbars;

int main() {
  bench::print_header("Baseline comparison: OOK vs FSK vs ColorBars CSK (Nexus-class camera)");

  const camera::SensorProfile profile = camera::nexus5_profile();
  const channel::ChannelSpec channel_spec{};

  std::printf("%-26s %-16s %-14s %s\n", "scheme", "throughput", "error rate",
              "notes");

  {
    baseline::FskConfig config;
    const baseline::FskRunResult result = baseline::fsk_run(config, profile, channel_spec, 90, 7);
    std::printf("%-26s %10.1f bps  %-14.4f %s\n", "FSK (8 freq, 1 sym/frame)",
                result.throughput_bps(), result.ser(),
                "RollingLight-class baseline (~90 bps = 11 B/s)");
  }
  {
    baseline::OokConfig config;
    config.symbol_rate_hz = 2000.0;
    const baseline::OokRunResult result =
        baseline::ook_run(config, profile, channel_spec, 6000, 8);
    std::printf("%-26s %10.1f bps  %-14.4f %s\n", "OOK @ 2 kHz",
                result.throughput_bps(), result.ber(),
                "1 bit/band, ambient-sensitive, flickers");
  }
  for (const csk::CskOrder order : {csk::CskOrder::kCsk8, csk::CskOrder::kCsk16}) {
    core::LinkConfig config;
    config.order = order;
    config.symbol_rate_hz = 4000.0;
    config.profile = profile;
    core::LinkSimulator sim(config);
    const core::LinkRunResult result = sim.run_goodput(3.0);
    const core::SerResult ser = sim.run_ser(4000);
    std::printf("ColorBars %-16s %10.1f bps  %-14.4f %s\n",
                bench::order_name(order), result.goodput_bps(), ser.ser(),
                "goodput incl. FEC + calibration + whites");
  }

  std::printf(
      "\nExpected shape: FSK lands near the paper's ~11 bytes/s; OOK carries one\n"
      "bit per band; ColorBars CSK delivers two orders of magnitude more than FSK.\n");
  return 0;
}
