// Reproduces Fig. 8: the effect of non-uniform brightness (vignetting)
// and why the receiver demodulates in CIELab.
//   (a) brightness is non-uniformly distributed in received frames
//       (reported as the luminance profile across a band);
//   (b) the variance of each pixel's color distance to the band mean is
//       far smaller in the CIELab (a,b) plane than in RGB space.

#include <cmath>

#include "bench_util.hpp"
#include "colorbars/camera/camera.hpp"
#include "colorbars/color/lab.hpp"
#include "colorbars/csk/constellation.hpp"
#include "colorbars/csk/modulation.hpp"
#include "colorbars/led/tri_led.hpp"

using namespace colorbars;

int main() {
  // Render a steady colored symbol through a heavily vignetted camera.
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  const led::TriLed led;
  led::EmissionTrace trace;
  trace.append(0.2, led.radiance(csk::drive_for(constellation.gamut(),
                                                constellation.point(4))));

  camera::SensorProfile profile = camera::nexus5_profile();
  profile.vignette_strength = 0.45;
  camera::RollingShutterCamera camera(profile, {}, 0xf18a);
  const camera::Frame frame = camera.capture_frame(trace, 0.05);

  bench::print_header("Fig. 8(a): non-uniform brightness across the frame");
  std::printf("%-12s %-12s\n", "column", "mean L");
  for (int c = 0; c < frame.columns; c += frame.columns / 8) {
    double total = 0.0;
    for (int r = 0; r < frame.rows; ++r) {
      const auto encoded = color::from_rgb8(frame.at(r, c));
      total += color::xyz_to_lab(color::linear_srgb_to_xyz(color::srgb_decode(encoded))).L;
    }
    std::printf("%-12d %-12.1f\n", c, total / frame.rows);
  }

  bench::print_header("Fig. 8(b): color variance around the band mean, RGB vs CIELab");

  // Collect both representations for every pixel of the frame's center
  // region (one color symbol fills the whole frame here).
  std::vector<util::Vec3> rgb_pixels;
  std::vector<color::ChromaAB> lab_pixels;
  for (int r = frame.rows / 4; r < 3 * frame.rows / 4; ++r) {
    for (int c = 0; c < frame.columns; ++c) {
      const auto encoded = color::from_rgb8(frame.at(r, c));
      rgb_pixels.push_back(encoded * 255.0);  // 8-bit RGB scale, as in the paper
      const color::Lab lab =
          color::xyz_to_lab(color::linear_srgb_to_xyz(color::srgb_decode(encoded)));
      lab_pixels.push_back(color::chroma_of(lab));
    }
  }

  util::Vec3 rgb_mean;
  for (const auto& pixel : rgb_pixels) rgb_mean += pixel;
  rgb_mean /= static_cast<double>(rgb_pixels.size());
  color::ChromaAB lab_mean;
  for (const auto& pixel : lab_pixels) lab_mean += pixel;
  lab_mean /= static_cast<double>(lab_pixels.size());

  auto variance_of = [](const std::vector<double>& distances) {
    double mean = 0.0;
    for (const double d : distances) mean += d;
    mean /= static_cast<double>(distances.size());
    double variance = 0.0;
    for (const double d : distances) variance += (d - mean) * (d - mean);
    return variance / static_cast<double>(distances.size());
  };

  std::vector<double> rgb_distances;
  rgb_distances.reserve(rgb_pixels.size());
  for (const auto& pixel : rgb_pixels) rgb_distances.push_back(distance(pixel, rgb_mean));
  std::vector<double> lab_distances;
  lab_distances.reserve(lab_pixels.size());
  for (const auto& pixel : lab_pixels) {
    lab_distances.push_back(color::delta_e_ab(pixel, lab_mean));
  }

  const double rgb_variance = variance_of(rgb_distances);
  const double lab_variance = variance_of(lab_distances);
  std::printf("%-24s %-14s\n", "color space", "variance");
  std::printf("%-24s %-14.2f\n", "RGB (8-bit distance)", rgb_variance);
  std::printf("%-24s %-14.2f\n", "CIELab (a,b) distance", lab_variance);
  std::printf("ratio RGB / CIELab = %.1fx\n", rgb_variance / lab_variance);

  bench::JsonReport report("fig8_colorspace");
  report.add_row()
      .metric("rgb_variance", rgb_variance)
      .metric("lab_variance", lab_variance)
      .metric("ratio", rgb_variance / lab_variance);

  std::printf(
      "\nExpected shape: L falls off toward the frame periphery (8a); the CIELab\n"
      "chroma variance is several times smaller than the RGB variance (8b), which\n"
      "is why the receiver drops the lightness dimension before matching.\n");
  return 0;
}
