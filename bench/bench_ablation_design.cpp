// Ablation bench: quantifies the design choices DESIGN.md calls out,
// each against its dropped/naive alternative on the same link.
//
//   1. Matching space — CIELab (a,b) vs full CIE94 vs raw RGB distance
//      (the "naive way" the paper rejects in §6.1).
//   2. Erasure vs blind-error RS decoding of the inter-frame gap
//      (the receiver locates the gap; declaring erasures doubles the
//      correctable loss for the same parity).
//   3. Gray-style vs natural bit labeling of the constellation
//      (misdetections land on spatial neighbors; Gray labels make each
//      such event cost ~1 bit).
//   4. De-phasing white pads between packets (without them, a packet
//      sized to one frame period phase-locks its header into the gap).

#include "bench_util.hpp"
#include "colorbars/core/link.hpp"
#include "colorbars/csk/mapper.hpp"

using namespace colorbars;

namespace {

core::SerResult ser_with_space(rx::MatchingSpace space, std::uint64_t seed) {
  core::LinkConfig config;
  config.order = csk::CskOrder::kCsk16;
  config.symbol_rate_hz = 2000.0;
  config.profile = camera::nexus5_profile();
  // Strong vignetting: the regime where brightness variation punishes
  // brightness-sensitive metrics (paper Fig. 8).
  config.profile.vignette_strength = 0.5;
  config.classifier.matching_space = space;
  config.seed = seed;
  core::LinkSimulator sim(config);
  return sim.run_ser(4000);
}

double goodput_with(bool erasures, bool pads, std::uint64_t seed) {
  core::LinkConfig config;
  config.order = csk::CskOrder::kCsk8;
  config.symbol_rate_hz = 3000.0;
  config.profile = camera::nexus5_profile();
  config.use_erasure_decoding = erasures;
  config.enable_dephasing_pad = pads;
  config.seed = seed;
  core::LinkSimulator sim(config);
  return sim.run_goodput(2.0).goodput_bps();
}

}  // namespace

int main() {
  bench::print_header("Ablation 1: symbol matching space (CSK16 @ 2 kHz, heavy vignette)");
  std::printf("%-24s %-10s %s\n", "matching space", "SER", "");
  const double lab_ser = ser_with_space(rx::MatchingSpace::kCielabAB, 11).ser();
  const double lab94_ser = ser_with_space(rx::MatchingSpace::kCielab94, 11).ser();
  const double rgb_ser = ser_with_space(rx::MatchingSpace::kRgb, 11).ser();
  std::printf("%-24s %-10.4f (production choice, paper §7)\n", "CIELab (a,b)", lab_ser);
  std::printf("%-24s %-10.4f\n", "CIE94 (L,a,b)", lab94_ser);
  std::printf("%-24s %-10.4f (the paper's rejected §6.1 baseline)\n", "RGB distance",
              rgb_ser);

  bench::print_header("Ablation 2: RS gap handling (CSK8 @ 3 kHz)");
  std::printf("%-28s %10.0f bps\n", "erasure decoding (located)",
              goodput_with(true, true, 21));
  std::printf("%-28s %10.0f bps\n", "blind error decoding",
              goodput_with(false, true, 21));

  bench::print_header("Ablation 3: constellation bit labeling");
  std::printf("%-8s %-24s %-24s\n", "order", "Gray (mean bits/error)", "natural labels");
  for (const csk::CskOrder order : csk::all_orders()) {
    const csk::Constellation constellation(order);
    const csk::SymbolMapper mapper(constellation);
    // Natural labels: label(i) == i. Mean Hamming distance to the
    // spatially nearest neighbor = bit cost of the dominant error event.
    double natural = 0.0;
    for (int i = 0; i < constellation.size(); ++i) {
      int nearest = -1;
      double best = 1e9;
      for (int j = 0; j < constellation.size(); ++j) {
        if (j == i) continue;
        const double d = color::xy_distance(constellation.point(i), constellation.point(j));
        if (d < best) {
          best = d;
          nearest = j;
        }
      }
      natural += csk::hamming(static_cast<std::uint32_t>(i),
                              static_cast<std::uint32_t>(nearest));
    }
    natural /= constellation.size();
    std::printf("%-8s %-24.2f %-24.2f\n", bench::order_name(order),
                mapper.mean_neighbor_hamming(constellation), natural);
  }

  bench::print_header("Ablation 4: de-phasing pads between packets");
  std::printf("%-28s %10.0f bps\n", "pads enabled", goodput_with(true, true, 31));
  std::printf("%-28s %10.0f bps  (headers can lock into the gap)\n", "pads disabled",
              goodput_with(true, false, 31));

  std::printf(
      "\nExpected shape: CIELab matching beats RGB under non-uniform brightness;\n"
      "erasure decoding beats blind decoding; Gray labeling costs fewer bits per\n"
      "symbol error than natural labels; disabling the pads is at best equal and\n"
      "sometimes catastrophically worse (phase lottery).\n");
  return 0;
}
