// Extension bench (paper §10 future work): operating range. The paper's
// prototype needed the phone within ~3 cm because its tri-LED is dim;
// the authors propose LED arrays for more lumens. This sweep moves the
// phone away from the LED in real meters through the channel's
// inverse-square attenuation stage (3 cm is the close-range reference
// where gain is 1.0) — the receiver's auto-exposure stretches exposure
// and then raises ISO, trading inter-symbol interference and noise for
// signal.

#include <cmath>

#include "bench_util.hpp"
#include "colorbars/core/link.hpp"

using namespace colorbars;

int main() {
  bench::print_header(
      "Extension: SER and goodput vs distance (CSK8 @ 2 kHz, Nexus-class)");
  bench::JsonReport report("extension_range");

  std::printf("%-14s %-12s %-12s %-12s %-14s %-12s\n", "distance", "gain", "exposure",
              "ISO", "SER", "goodput");
  // 3 cm (reference) out to ~17 cm: each step is sqrt(2) further, i.e.
  // the received signal halves — the same gain ladder the old
  // signal_scale sweep {1.0 .. 0.03} walked, now in meters.
  for (const double distance_m :
       {0.030, 0.042, 0.060, 0.087, 0.122, 0.173}) {
    core::LinkConfig config;
    config.order = csk::CskOrder::kCsk8;
    config.symbol_rate_hz = 2000.0;
    config.profile = camera::nexus5_profile();
    config.channel.distance.distance_m = distance_m;
    config.seed = 0xd157 + static_cast<std::uint64_t>(distance_m * 1e4);

    // Report the attenuation and the auto-exposure decision the camera
    // would make at this distance.
    const channel::OpticalChannel optics(config.channel);
    camera::RollingShutterCamera camera(config.profile, optics, 1);
    const led::TriLed led;
    const auto settings = camera.auto_exposure(led.radiance(csk::white_drive()));

    core::LinkSimulator sim(config);
    const core::SerResult ser = sim.run_ser(3000);
    const core::LinkRunResult goodput = sim.run_goodput(1.5);
    std::printf("%9.1f cm  %-12.3f %9.0f us  %-12.0f %-14.4f %8.0f bps\n",
                distance_m * 100.0, optics.attenuation_gain(),
                settings.exposure_s * 1e6, settings.iso, ser.ser(),
                goodput.goodput_bps());
    report.add_row()
        .metric("distance_m", distance_m)
        .metric("attenuation_gain", optics.attenuation_gain())
        .metric("exposure_us", settings.exposure_s * 1e6)
        .metric("iso", settings.iso)
        .metric("ser", ser.ser())
        .metric("loss_ratio", ser.inter_frame_loss_ratio)
        .metric("goodput_bps", goodput.goodput_bps());
  }

  std::printf(
      "\nExpected shape: graceful at moderate range (auto-exposure absorbs the\n"
      "inverse-square falloff), then SER rises and goodput collapses once the\n"
      "exposure window grows comparable to the symbol duration and ISO gain\n"
      "amplifies noise — the paper's motivation for LED arrays at range.\n");
  return 0;
}
