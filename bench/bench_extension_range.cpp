// Extension bench (paper §10 future work): operating range. The paper's
// prototype needed the phone within ~3 cm because its tri-LED is dim;
// the authors propose LED arrays for more lumens. Here the signal scale
// stands in for distance/lumens (received irradiance falls off with
// distance), sweeping from the close-range reference (1.0) down to 3% —
// the receiver's auto-exposure stretches exposure and then raises ISO,
// trading inter-symbol interference and noise for signal.

#include "bench_util.hpp"
#include "colorbars/core/link.hpp"

using namespace colorbars;

int main() {
  bench::print_header(
      "Extension: SER and goodput vs received signal level (CSK8 @ 2 kHz, Nexus-class)");

  std::printf("%-14s %-12s %-12s %-14s %-12s\n", "signal scale", "exposure", "ISO",
              "SER", "goodput");
  for (const double scale : {1.0, 0.5, 0.25, 0.12, 0.06, 0.03}) {
    core::LinkConfig config;
    config.order = csk::CskOrder::kCsk8;
    config.symbol_rate_hz = 2000.0;
    config.profile = camera::nexus5_profile();
    config.scene.signal_scale = scale;
    config.seed = 0xd157 + static_cast<std::uint64_t>(scale * 1000);

    // Report the auto-exposure decision the camera would make.
    camera::RollingShutterCamera camera(config.profile, config.scene, 1);
    const led::TriLed led;
    const auto settings = camera.auto_exposure(led.radiance(csk::white_drive()));

    core::LinkSimulator sim(config);
    const core::SerResult ser = sim.run_ser(3000);
    const core::LinkRunResult goodput = sim.run_goodput(1.5);
    std::printf("%-14.2f %9.0f us  %-12.0f %-14.4f %8.0f bps\n", scale,
                settings.exposure_s * 1e6, settings.iso, ser.ser(),
                goodput.goodput_bps());
  }

  std::printf(
      "\nExpected shape: graceful at moderate attenuation (auto-exposure absorbs\n"
      "it), then SER rises and goodput collapses once the exposure window grows\n"
      "comparable to the symbol duration and ISO gain amplifies noise — the\n"
      "paper's motivation for LED arrays at range.\n");
  return 0;
}
