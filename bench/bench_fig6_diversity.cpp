// Reproduces Fig. 6: receiver-diversity effects.
//   (a) the same 8-CSK symbols as perceived by the Nexus 5 and the
//       iPhone 5S (CIELab a/b coordinates of each received reference
//       color) — different color filters, different perceived symbols;
//   (b) the perceived color of one transmitted symbol (pure blue) as a
//       function of exposure time;
//   (c) the same as a function of ISO.

#include <cmath>

#include "bench_util.hpp"
#include "colorbars/camera/camera.hpp"
#include "colorbars/channel/channel.hpp"
#include "colorbars/rx/band_extractor.hpp"
#include "colorbars/rx/receiver.hpp"
#include "colorbars/tx/transmitter.hpp"

using namespace colorbars;

namespace {

/// Captures one calibration packet through `camera` and returns the
/// receiver's learned reference chroma for each symbol.
std::vector<color::ChromaAB> perceived_references(const camera::SensorProfile& profile,
                                                  std::optional<camera::ExposureSettings>
                                                      manual = std::nullopt,
                                                  channel::ChannelSpec channel_spec = {}) {
  tx::TransmitterConfig tx_config;
  tx_config.format.order = csk::CskOrder::kCsk8;
  tx_config.symbol_rate_hz = 1000.0;  // wide bands for clean references
  const tx::Transmitter transmitter(tx_config);
  const tx::Transmission transmission = transmitter.transmit_raw_symbols({});

  camera::RollingShutterCamera camera(profile, channel::OpticalChannel(channel_spec),
                                      0xd1ce);
  if (manual.has_value()) camera.set_manual_exposure(*manual);
  const auto frames = camera.capture_video(transmission.trace);

  rx::ReceiverConfig rx_config;
  rx_config.format = tx_config.format;
  rx_config.symbol_rate_hz = tx_config.symbol_rate_hz;
  rx::Receiver receiver(rx_config);
  (void)receiver.process(frames);

  std::vector<color::ChromaAB> references;
  for (int i = 0; i < 8; ++i) {
    references.push_back(receiver.store().reference(i).value_or(color::ChromaAB{}));
  }
  return references;
}

}  // namespace

int main() {
  bench::print_header("Fig. 6(a): same 8-CSK symbols perceived by different cameras");
  bench::JsonReport report("fig6_diversity");
  const auto nexus = perceived_references(camera::nexus5_profile());
  const auto iphone = perceived_references(camera::iphone5s_profile());
  std::printf("%-6s %-22s %-22s %s\n", "sym", "Nexus 5 (a, b)", "iPhone 5S (a, b)",
              "ΔE between devices");
  for (int i = 0; i < 8; ++i) {
    std::printf("%-6d (%7.1f, %7.1f)     (%7.1f, %7.1f)     %6.1f\n", i, nexus[i].a,
                nexus[i].b, iphone[i].a, iphone[i].b,
                color::delta_e_ab(nexus[i], iphone[i]));
    report.add_row()
        .label("figure", "6a")
        .metric("symbol", i)
        .metric("nexus_a", nexus[i].a)
        .metric("nexus_b", nexus[i].b)
        .metric("iphone_a", iphone[i].a)
        .metric("iphone_b", iphone[i].b)
        .metric("delta_e", color::delta_e_ab(nexus[i], iphone[i]));
  }

  // Figs. 6b/6c transmit one steady symbol (pure blue) and sweep the
  // camera settings manually; the measurement is the mean chroma of the
  // captured frame. The LED is dimmed (neutral-density-style) so the
  // sweep spans under- to over-exposure instead of clipping immediately.
  const auto steady_blue_chroma = [](const camera::ExposureSettings& settings) {
    const csk::Constellation constellation(csk::CskOrder::kCsk8);
    const led::TriLed led;
    led::EmissionTrace trace;
    trace.append(0.2, led.radiance(csk::drive_for(constellation.gamut(),
                                                  constellation.gamut().blue())));
    // Dimmed (neutral-density-style) via distance: 0.03 m reference
    // moved to sqrt(1/0.12) x the reference ≈ 8.66 cm gives the old
    // 0.12 signal gain through the inverse-square attenuation stage.
    channel::ChannelSpec dimmed;
    dimmed.distance.distance_m = 0.03 / std::sqrt(0.12);
    camera::RollingShutterCamera camera(camera::nexus5_profile(),
                                        channel::OpticalChannel(dimmed), 0xb1ce);
    camera.set_manual_exposure(settings);
    const camera::Frame frame = camera.capture_frame(trace, 0.05);
    const auto scanlines = rx::reduce_to_scanlines(frame);
    color::ChromaAB mean;
    for (const auto& line : scanlines) mean += line.chroma;
    mean /= static_cast<double>(scanlines.size());
    return mean;
  };

  bench::print_header("Fig. 6(b): perceived color of pure blue vs exposure time");
  std::printf("%-16s %-10s %-10s\n", "exposure (us)", "a", "b");
  for (const double exposure_us : {200.0, 400.0, 800.0, 1600.0, 3200.0, 6400.0}) {
    const auto chroma = steady_blue_chroma({exposure_us / 1e6, 100.0});
    std::printf("%-16.0f %-10.1f %-10.1f\n", exposure_us, chroma.a, chroma.b);
    report.add_row()
        .label("figure", "6b")
        .metric("exposure_us", exposure_us)
        .metric("a", chroma.a)
        .metric("b", chroma.b);
  }

  bench::print_header("Fig. 6(c): perceived color of pure blue vs ISO");
  std::printf("%-10s %-10s %-10s\n", "ISO", "a", "b");
  for (const double iso : {100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0}) {
    const auto chroma = steady_blue_chroma({1.0 / 2500.0, iso});
    std::printf("%-10.0f %-10.1f %-10.1f\n", iso, chroma.a, chroma.b);
    report.add_row()
        .label("figure", "6c")
        .metric("iso", iso)
        .metric("a", chroma.a)
        .metric("b", chroma.b);
  }

  std::printf(
      "\nExpected shape: per-device reference colors differ by several ΔE (6a);\n"
      "exposure and ISO sweeps move the perceived chroma of the same symbol (6b/6c)\n"
      "— the motivation for transmitter-assisted calibration.\n");
  return 0;
}
