// Extension bench (paper §10 future work): high-order constellations
// decoded through pluggable symbol-decision engines on ISI channels.
//
// Part 1 reports the packing quality of every constellation in the
// receiver's decision metric — minimum pairwise ΔE over the rendered
// (a,b) chroma. The xy-plane max-min objective the standard optimizes
// is not the metric the receiver classifies with; at CSK64 density an
// xy packing collapses symbol pairs to near-coincident chroma, which
// is why the 64-point layout is packed with maxmin_packing_lab.
//
// Part 2 sweeps (order x engine x delay spread) and measures SER plus
// goodput through the full link simulator. The ISI channel uses
// symbol-spaced echo taps (tap spacing = one slot), the regime a
// linear FIR equalizer is built for; the exponential profile's
// sub-slot smear instead breaks packet framing (the OFF-prefix
// delimiter) before classification becomes the bottleneck.
//
// Acceptance gate: on the moderate-ISI channel, the equalized engine
// must hold CSK64 below the RS-correctable SER threshold while the
// nearest-reference scan fails it — the headline claim of the
// equalized-decode extension.

#include <cmath>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "colorbars/color/lab.hpp"
#include "colorbars/color/srgb.hpp"
#include "colorbars/core/link.hpp"
#include "colorbars/csk/constellation.hpp"

using namespace colorbars;

namespace {

/// The receiver-side decision metric: minimum pairwise ΔE over the
/// constellation rendered through the reference camera pipeline
/// (unit-power LED emission, clipped sRGB sensor, CIELab). Mirrors the
/// render inside maxmin_packing_lab.
double min_rendered_ab_distance(const std::vector<color::Chromaticity>& points) {
  constexpr double kExposureScale = 1.3;
  auto rendered = [](const color::Chromaticity& c) {
    const color::XYZ emitted{c.x * kExposureScale, c.y * kExposureScale,
                             (1.0 - c.x - c.y) * kExposureScale};
    const util::Vec3 sensor = color::xyz_to_linear_srgb(emitted).clamped(0.0, 1.0);
    return color::chroma_of(color::xyz_to_lab(color::linear_srgb_to_xyz(sensor)));
  };
  std::vector<color::ChromaAB> ab;
  ab.reserve(points.size());
  for (const auto& p : points) ab.push_back(rendered(p));
  double best = 1e9;
  for (std::size_t i = 0; i < ab.size(); ++i) {
    for (std::size_t j = i + 1; j < ab.size(); ++j) {
      best = std::min(best, color::delta_e_ab(ab[i], ab[j]));
    }
  }
  return best;
}

struct SpreadPoint {
  const char* name;
  double delay_spread_s;
};

struct EnginePoint {
  const char* name;
  eq::EngineKind kind;
};

core::LinkConfig link_config(csk::CskOrder order, eq::EngineKind kind,
                             double spread_s) {
  core::LinkConfig config;
  config.order = order;
  config.symbol_rate_hz = 2000.0;
  config.profile = camera::ideal_profile();
  config.engine.kind = kind;
  // Short FIR: the symbol-spaced single-echo channel needs only the
  // direct tap plus one cancellation tap, and a short window keeps the
  // nearest-reference fallback rate (incomplete context after
  // inter-frame gaps) low.
  config.engine.channel_taps = 2;
  config.engine.equalizer_taps = 3;
  // Symbol-spaced echo: one reflection tap exactly one slot behind the
  // direct path, weighted exp(-slot / spread).
  config.channel.isi.delay_spread_s = spread_s;
  config.channel.isi.tap_spacing_s = 1.0 / config.symbol_rate_hz;
  config.channel.isi.taps = 2;
  return config;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: equalized decode of high-order constellations under ISI");

  bench::JsonReport report("extension_constellation");

  // ---- Part 1: packing quality in the decision metric ----------------
  const auto& gamut = color::default_led_gamut();
  std::printf("%-8s %-20s %-22s\n", "order", "min xy dist", "min rendered ab dist");
  for (const csk::CskOrder order : csk::all_orders()) {
    const csk::Constellation constellation(order, gamut);
    const double xy = constellation.min_pairwise_distance();
    const double ab = min_rendered_ab_distance(constellation.points());
    std::printf("%-8s %-20.4f %-22.3f\n", bench::order_name(order), xy, ab);
    report.add_row()
        .label("table", "packing")
        .label("order", bench::order_name(order))
        .metric("min_xy_distance", xy)
        .metric("min_rendered_ab_distance", ab);
  }

  // ---- Part 2: SER / goodput per (order x engine x delay spread) -----
  const SpreadPoint spreads[] = {
      {"clean", 0.0},
      {"moderate", 0.00022},
      {"harsh", 0.0003},
  };
  const EnginePoint engines[] = {
      {"nearest", eq::EngineKind::kNearestReference},
      {"mmse", eq::EngineKind::kLinearMmse},
      {"freq", eq::EngineKind::kFrequencyDomain},
  };
  const csk::CskOrder orders[] = {csk::CskOrder::kCsk16, csk::CskOrder::kCsk32,
                                  csk::CskOrder::kCsk64};

  std::printf("\n%-8s %-10s %-9s %-10s %-12s %-10s %-8s\n", "order", "spread",
              "engine", "SER", "goodput bps", "retrains", "fallback");

  double ser_nearest_csk64_moderate = -1.0;
  double ser_mmse_csk64_moderate = -1.0;
  double threshold_csk64 = 0.0;
  for (const csk::CskOrder order : orders) {
    for (const SpreadPoint& spread : spreads) {
      for (const EnginePoint& engine : engines) {
        core::LinkConfig config = link_config(order, engine.kind, spread.delay_spread_s);
        const rs::CodeParameters code = config.code();
        // Half the parity corrects errors; the rest is erasure headroom
        // for inter-frame gaps.
        const double rs_threshold =
            0.5 * static_cast<double>(code.n - code.k) / static_cast<double>(code.n);

        core::LinkSimulator ser_sim(config);
        const core::SerResult ser = ser_sim.run_ser(4000);

        core::LinkSimulator goodput_sim(config);
        const core::LinkRunResult run = goodput_sim.run_goodput(1.5);

        std::printf("%-8s %-10s %-9s %-10.4f %-12.0f %-10lld %-8lld\n",
                    bench::order_name(order), spread.name, engine.name, ser.ser(),
                    run.goodput_bps(), ser.engine_retrains,
                    ser.engine_fallback_decisions);
        report.add_row()
            .label("table", "link")
            .label("order", bench::order_name(order))
            .label("spread", spread.name)
            .label("engine", engine.name)
            .metric("delay_spread_s", spread.delay_spread_s)
            .metric("ser", ser.ser())
            .metric("rs_correctable_ser", rs_threshold)
            .metric("goodput_bps", run.goodput_bps())
            .metric("recovered_bytes", static_cast<double>(run.recovered_bytes))
            .metric("engine_decisions", static_cast<double>(ser.engine_decisions))
            .metric("engine_fallback_decisions",
                    static_cast<double>(ser.engine_fallback_decisions))
            .metric("engine_retrains", static_cast<double>(ser.engine_retrains))
            .metric("engine_train_fallbacks",
                    static_cast<double>(ser.engine_train_fallbacks))
            .metric("engine_tap_norm", ser.engine_tap_norm);

        if (order == csk::CskOrder::kCsk64 &&
            std::string(spread.name) == "moderate") {
          threshold_csk64 = rs_threshold;
          if (engine.kind == eq::EngineKind::kNearestReference) {
            ser_nearest_csk64_moderate = ser.ser();
          }
          if (engine.kind == eq::EngineKind::kLinearMmse) {
            ser_mmse_csk64_moderate = ser.ser();
          }
        }
      }
    }
  }

  // ---- Acceptance gate ------------------------------------------------
  const bool nearest_fails = ser_nearest_csk64_moderate > threshold_csk64;
  const bool equalized_holds = ser_mmse_csk64_moderate >= 0.0 &&
                               ser_mmse_csk64_moderate < threshold_csk64;
  const bool pass = nearest_fails && equalized_holds;
  std::printf(
      "\nCSK64 @ moderate ISI: nearest SER %.4f vs mmse SER %.4f "
      "(RS-correctable %.4f)\n",
      ser_nearest_csk64_moderate, ser_mmse_csk64_moderate, threshold_csk64);
  std::printf("acceptance (equalized sustains CSK64 where nearest fails): %s\n",
              pass ? "PASS" : "FAIL");
  report.add_row()
      .label("table", "acceptance")
      .metric("ser_nearest_csk64_moderate", ser_nearest_csk64_moderate)
      .metric("ser_mmse_csk64_moderate", ser_mmse_csk64_moderate)
      .metric("rs_correctable_ser", threshold_csk64)
      .metric("pass", pass ? 1 : 0);
  report.write();
  return pass ? 0 : 1;
}
