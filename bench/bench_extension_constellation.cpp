// Extension bench (paper §10 future work): constellation optimization
// beyond the 802.15.7 layouts. Compares the standard layouts against
// repulsion-optimized versions on two quality measures:
//   - minimum inter-symbol distance (the standard's design objective),
//   - Monte-Carlo SER under isotropic chromaticity noise of the
//     magnitude the camera pipeline actually produces.

#include <cmath>

#include "bench_util.hpp"
#include "colorbars/csk/constellation.hpp"
#include "colorbars/util/rng.hpp"

using namespace colorbars;

namespace {

double min_distance(const std::vector<color::Chromaticity>& points) {
  double best = 1e9;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      best = std::min(best, color::xy_distance(points[i], points[j]));
    }
  }
  return best;
}

/// Monte-Carlo SER: transmit each point equally often, add Gaussian xy
/// noise, decode by nearest neighbor.
double noise_ser(const std::vector<color::Chromaticity>& points, double sigma,
                 std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  long long errors = 0;
  constexpr int kTrialsPerPoint = 3000;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (int trial = 0; trial < kTrialsPerPoint; ++trial) {
      const color::Chromaticity received{points[i].x + rng.normal(0.0, sigma),
                                         points[i].y + rng.normal(0.0, sigma)};
      std::size_t best = 0;
      double best_distance = 1e9;
      for (std::size_t j = 0; j < points.size(); ++j) {
        const double d = color::xy_distance(points[j], received);
        if (d < best_distance) {
          best_distance = d;
          best = j;
        }
      }
      errors += best != i ? 1 : 0;
    }
  }
  return static_cast<double>(errors) /
         (static_cast<double>(points.size()) * kTrialsPerPoint);
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: repulsion-optimized constellations vs 802.15.7 layouts");

  const auto& gamut = color::default_led_gamut();
  // Noise magnitude: ~1.5% of the xy plane — the per-band chromaticity
  // spread the camera pipeline produces at moderate exposure.
  const double sigma = 0.015;

  bench::JsonReport report("extension_constellation");
  std::printf("%-8s %-22s %-22s %-14s %-14s\n", "order", "min dist (standard)",
              "min dist (optimized)", "SER (std)", "SER (opt)");
  for (const csk::CskOrder order : csk::all_orders()) {
    const csk::Constellation standard(order, gamut);
    const auto optimized =
        csk::optimize_constellation(gamut, standard.points(), 400);
    const double std_min = min_distance(standard.points());
    const double opt_min = min_distance(optimized);
    const double std_ser = noise_ser(standard.points(), sigma, 7);
    const double opt_ser = noise_ser(optimized, sigma, 7);
    std::printf("%-8s %-22.4f %-22.4f %-14.5f %-14.5f\n", bench::order_name(order),
                std_min, opt_min, std_ser, opt_ser);
    report.add_row()
        .label("order", bench::order_name(order))
        .metric("min_distance_standard", std_min)
        .metric("min_distance_optimized", opt_min)
        .metric("ser_standard", std_ser)
        .metric("ser_optimized", opt_ser);
  }

  std::printf(
      "\nExpected shape: optimization never reduces the minimum distance, and the\n"
      "gains concentrate at the higher orders (16/32-CSK) where the standard's\n"
      "lattice layouts are furthest from a max-min packing — exactly the orders\n"
      "whose SER limits ColorBars' goodput (Figs. 9/11).\n");
  return 0;
}
