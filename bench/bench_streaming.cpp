// Demonstrates that the incremental StreamingReceiver has O(1) amortized
// per-poll() cost and window-bounded memory over a long live capture.
//
// A 60 s transmission of back-to-back data packets (plus the periodic
// calibration packets) is captured frame by frame; every frame is pushed
// and polled immediately, timing each poll. With the sliding-window
// parser the mean poll cost of the last second matches the first second
// (the acceptance bound is 2x) and the peak retained window is a few
// frame periods, independent of capture length. The pre-rework receiver
// re-parsed the full history on every poll: cost grew linearly per poll
// (quadratic overall) and retained observations grew without bound.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <numeric>

#include "bench_util.hpp"
#include "colorbars/core/link.hpp"
#include "colorbars/pipeline/pipeline.hpp"
#include "colorbars/rx/streaming.hpp"
#include "colorbars/tx/transmitter.hpp"
#include "colorbars/util/rng.hpp"

using namespace colorbars;

namespace {

double mean_us(const std::vector<double>& seconds) {
  if (seconds.empty()) return 0.0;
  return 1e6 * std::accumulate(seconds.begin(), seconds.end(), 0.0) /
         static_cast<double>(seconds.size());
}

}  // namespace

int main(int argc, char** argv) {
  const double duration_s = argc > 1 ? std::atof(argv[1]) : 60.0;
  bench::print_header("Streaming receiver: per-poll cost over a long capture");

  core::LinkConfig link;
  link.order = csk::CskOrder::kCsk8;
  link.symbol_rate_hz = 2000.0;
  link.profile = camera::ideal_profile();
  // Narrow sensor: the close-range LED lights every column identically,
  // so fewer simulated columns only speeds up the camera model.
  link.profile.columns = 8;

  // Payload sized to fill the duration with back-to-back packets.
  const tx::TransmitterConfig tx_config = link.transmitter_config();
  const tx::Transmitter transmitter(tx_config);
  const protocol::Packetizer& packetizer = transmitter.packetizer();
  const int packet_slots = packetizer.data_packet_slots(tx_config.rs_n);
  const auto packet_count = static_cast<std::size_t>(
      duration_s * link.symbol_rate_hz / packet_slots);
  util::Xoshiro256 rng(0xbe7c);
  std::vector<std::uint8_t> payload(packet_count *
                                    static_cast<std::size_t>(tx_config.rs_k));
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.below(256));
  const tx::Transmission transmission = transmitter.transmit(payload);
  std::printf("capture: %.0f s, %zu packets, %.0f Hz, %.0f fps\n", duration_s,
              packet_count, link.symbol_rate_hz, link.profile.fps);

  // Capture through the streaming frame pipeline: a FrameSource renders
  // the capture plan a bounded lookahead at a time into pooled buffers,
  // so a minute of video never has to be held in memory.
  camera::RollingShutterCamera camera(
      link.profile, channel::OpticalChannel(link.channel), 0x5eed);
  rx::StreamingReceiver streaming(link.receiver_config());
  const double period = link.profile.frame_period_s();
  pipeline::BufferPool pool;
  pipeline::FrameSource source(camera, transmission.trace, pool, {});

  // Interleaved calibration packets stretch the transmission slightly
  // past duration_s, so the per-second buckets grow on demand.
  std::vector<std::vector<double>> poll_s_by_second;
  std::size_t packets_reported = 0;
  while (const camera::Frame* frame = source.next()) {
    const double nominal = (source.frames_emitted() - 1) * period;
    streaming.push_frame(*frame);
    const auto started = std::chrono::steady_clock::now();
    packets_reported += streaming.poll().size();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - started).count();
    const auto second = static_cast<std::size_t>(nominal);
    if (second >= poll_s_by_second.size()) poll_s_by_second.resize(second + 1);
    poll_s_by_second[second].push_back(elapsed);
  }
  packets_reported += streaming.finish().size();

  pipeline::PipelineStats pipeline_stats;
  pipeline_stats.frames_streamed = source.frames_emitted();
  pipeline_stats.refills = source.refills();
  pipeline_stats.pool = pool.stats();
  streaming.note_pipeline_stats(pipeline_stats);

  const rx::StreamingStats& stats = streaming.stats();
  const double first_us = mean_us(poll_s_by_second.front());
  double last_us = 0.0;
  for (auto it = poll_s_by_second.rbegin(); it != poll_s_by_second.rend(); ++it) {
    if (!it->empty()) {
      last_us = mean_us(*it);
      break;
    }
  }

  std::printf("\nframes ingested      %d\n", streaming.frames_ingested());
  std::printf("packets reported     %zu\n", packets_reported);
  std::printf("payload bytes        %zu / %zu sent\n", streaming.payload().size(),
              payload.size());
  std::printf("slots ingested       %lld\n", stats.slots_ingested);
  std::printf("slots scanned        %lld (%.2fx ingested)\n", stats.slots_scanned,
              static_cast<double>(stats.slots_scanned) /
                  static_cast<double>(stats.slots_ingested));
  std::printf("slots evicted        %lld\n", stats.slots_evicted);
  std::printf("peak window          %lld slots (holdback %lld + tail %lld)\n",
              stats.peak_window_slots, streaming.holdback_slots(),
              streaming.tail_keep_slots());
  std::printf("total parse time     %.1f ms\n", 1e3 * stats.parse_time_s);
  std::printf("pipeline refills     %lld (lookahead %d)\n", pipeline_stats.refills,
              pipeline::SourceConfig{}.lookahead);
  std::printf("pool frame reuse     %lld hits / %lld misses\n", stats.pool_frame_hits,
              stats.pool_frame_misses);
  std::printf("peak resident frames %lld\n", stats.peak_resident_frames);
  std::printf("mean poll, first 1 s %8.2f us\n", first_us);
  std::printf("mean poll, last 1 s  %8.2f us\n", last_us);
  const double ratio = first_us > 0.0 ? last_us / first_us : 0.0;
  std::printf("last/first ratio     %8.2f  (flat <= 2.0 => O(1) amortized)\n", ratio);

  const bool flat = ratio <= 2.0;
  const bool bounded =
      stats.peak_window_slots <
      3 * (streaming.holdback_slots() + streaming.tail_keep_slots());
  // The pool never allocates more frames than one lookahead batch, no
  // matter how long the capture runs.
  const bool pooled =
      stats.peak_resident_frames <= pipeline::SourceConfig{}.lookahead;
  std::printf("\n%s: per-poll cost %s, window %s, frames %s\n",
              flat && bounded && pooled ? "PASS" : "FAIL", flat ? "flat" : "GREW",
              bounded ? "bounded" : "UNBOUNDED", pooled ? "pooled" : "UNPOOLED");
  return flat && bounded && pooled ? 0 : 1;
}
