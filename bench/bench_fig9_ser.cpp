// Reproduces Fig. 9: symbol error rate vs symbol frequency (1-4 kHz) for
// 4/8/16/32-CSK on the Nexus 5 (9a) and iPhone 5S (9b) camera models,
// with automatic exposure/ISO as in the paper.
//
// Paper shape: 4/8-CSK SER stays near zero (< 1e-3) at every frequency;
// 16/32-CSK SER rises with frequency as narrower bands increase the
// inter-symbol interference; the iPhone's cleaner color path gives it a
// lower SER than the Nexus despite its larger inter-frame gap.

#include "bench_util.hpp"
#include "colorbars/core/link.hpp"

using namespace colorbars;

int main() {
  bench::print_header("Fig. 9: SER vs symbol frequency (CIELab matching, auto exposure)");
  bench::JsonReport report("fig9_ser");

  for (const auto& profile : {camera::nexus5_profile(), camera::iphone5s_profile()}) {
    std::printf("\n%s\n", profile.name.c_str());
    std::printf("%-8s", "");
    for (const double frequency : bench::paper_frequencies()) {
      std::printf(" %9.0fHz", frequency);
    }
    std::printf("\n");
    for (const csk::CskOrder order : csk::all_orders()) {
      std::printf("%-8s", bench::order_name(order));
      for (const double frequency : bench::paper_frequencies()) {
        core::LinkConfig config;
        config.order = order;
        config.symbol_rate_hz = frequency;
        config.profile = profile;
        config.seed = 0xf19 + static_cast<std::uint64_t>(frequency) +
                      (static_cast<std::uint64_t>(order) << 20);
        core::LinkSimulator sim(config);
        // 2.5 s per point, split into parallel trials on derived seeds.
        const int symbols_per_trial = static_cast<int>(frequency * 1.25);
        const core::SerBatchResult batch = sim.run_ser_trials(2, symbols_per_trial);
        std::printf(" %11.4f", batch.ser.mean);
        report.add_row()
            .label("device", profile.name)
            .label("order", bench::order_name(order))
            .metric("symbol_rate_hz", frequency)
            .metric("ser_mean", batch.ser.mean)
            .metric("ser_stddev", batch.ser.stddev)
            .metric("loss_ratio_mean", batch.inter_frame_loss_ratio.mean);
      }
      std::printf("\n");
    }
  }

  std::printf(
      "\nExpected shape: CSK4/CSK8 rows ~0 everywhere; CSK16/CSK32 grow with\n"
      "frequency; iPhone 5S values sit below the Nexus 5 values.\n");
  return 0;
}
