// Reproduces Fig. 9: symbol error rate vs symbol frequency (1-4 kHz) for
// 4/8/16/32-CSK on the Nexus 5 (9a) and iPhone 5S (9b) camera models,
// with automatic exposure/ISO as in the paper.
//
// Paper shape: 4/8-CSK SER stays near zero (< 1e-3) at every frequency;
// 16/32-CSK SER rises with frequency as narrower bands increase the
// inter-symbol interference; the iPhone's cleaner color path gives it a
// lower SER than the Nexus despite its larger inter-frame gap.
//
// Set COLORBARS_GRID_WORKERS=N to run the grid through the sharded
// trial service (colorbars::svc) across N worker processes — results
// are byte-identical to the in-process run, and the scheduler stats are
// appended to the JSON report.

#include "bench_util.hpp"
#include "colorbars/core/link.hpp"
#include "colorbars/svc/service.hpp"

using namespace colorbars;

namespace {

core::LinkConfig point_config(const camera::SensorProfile& profile,
                              csk::CskOrder order, double frequency) {
  core::LinkConfig config;
  config.order = order;
  config.symbol_rate_hz = frequency;
  config.profile = profile;
  config.seed = 0xf19 + static_cast<std::uint64_t>(frequency) +
                (static_cast<std::uint64_t>(order) << 20);
  return config;
}

// 2.5 s per point, split into trials on derived seeds.
constexpr int kTrials = 2;
int symbols_per_trial(double frequency) {
  return static_cast<int>(frequency * 1.25);
}

}  // namespace

int main() {
  svc::maybe_run_worker();  // this binary is its own grid worker

  bench::print_header("Fig. 9: SER vs symbol frequency (CIELab matching, auto exposure)");
  bench::JsonReport report("fig9_ser");

  // With COLORBARS_GRID_WORKERS set, precompute every point through the
  // trial service; the print loops below then just index the results.
  const std::optional<int> grid_workers = svc::grid_workers_from_env();
  std::vector<svc::PointResult> grid_results;
  svc::SvcStats grid_stats;
  if (grid_workers) {
    svc::SweepSpec spec;
    for (const auto& profile : {camera::nexus5_profile(), camera::iphone5s_profile()}) {
      for (const csk::CskOrder order : csk::all_orders()) {
        for (const double frequency : bench::paper_frequencies()) {
          svc::SweepPoint point;
          point.config = point_config(profile, order, frequency);
          point.kind = svc::TrialKind::kSer;
          point.trials = kTrials;
          point.symbols_per_trial = symbols_per_trial(frequency);
          spec.points.push_back(std::move(point));
        }
      }
    }
    svc::ServiceConfig service;
    service.workers = *grid_workers;
    grid_results = svc::run_sweep(spec, service, &grid_stats);
  }

  std::size_t point_index = 0;
  for (const auto& profile : {camera::nexus5_profile(), camera::iphone5s_profile()}) {
    std::printf("\n%s\n", profile.name.c_str());
    std::printf("%-8s", "");
    for (const double frequency : bench::paper_frequencies()) {
      std::printf(" %9.0fHz", frequency);
    }
    std::printf("\n");
    for (const csk::CskOrder order : csk::all_orders()) {
      std::printf("%-8s", bench::order_name(order));
      for (const double frequency : bench::paper_frequencies()) {
        core::BatchStats ser;
        core::BatchStats loss_ratio;
        if (grid_workers) {
          ser = grid_results[point_index].primary;
          loss_ratio = grid_results[point_index].loss_ratio;
          ++point_index;
        } else {
          core::LinkSimulator sim(point_config(profile, order, frequency));
          const core::SerBatchResult batch =
              sim.run_ser_trials(kTrials, symbols_per_trial(frequency));
          ser = batch.ser;
          loss_ratio = batch.inter_frame_loss_ratio;
        }
        std::printf(" %11.4f", ser.mean);
        report.add_row()
            .label("device", profile.name)
            .label("order", bench::order_name(order))
            .metric("symbol_rate_hz", frequency)
            .metric("ser_mean", ser.mean)
            .metric("ser_stddev", ser.stddev)
            .metric("loss_ratio_mean", loss_ratio.mean);
      }
      std::printf("\n");
    }
  }

  if (grid_workers) {
    report.add_row()
        .label("device", "scheduler")
        .metric("grid_workers", grid_stats.workers)
        .metric("jobs", static_cast<double>(grid_stats.jobs_total))
        .metric("retries", static_cast<double>(grid_stats.retries))
        .metric("respawns", static_cast<double>(grid_stats.respawns))
        .metric("wall_time_s", grid_stats.wall_time_s);
  }

  std::printf(
      "\nExpected shape: CSK4/CSK8 rows ~0 everywhere; CSK16/CSK32 grow with\n"
      "frequency; iPhone 5S values sit below the Nexus 5 values.\n");
  return 0;
}
