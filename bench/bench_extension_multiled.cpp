// Extension bench: multi-luminaire spatial multiplexing. The paper's §10
// outlook points at LED arrays; colorbars::scene realizes it — N
// independent transmitters share one camera view as column strips, the
// receiver tracks each strip and decodes every ROI in parallel. Each
// luminaire carries the full single-link symbol rate, so aggregate
// goodput should scale with luminaire count until strips get too narrow
// for clean column averaging.
//
// Acceptance: every luminaire acquires a decode lane for N <= 4, and
// aggregate goodput increases strictly monotonically 1 -> 2 -> 4
// luminaires. The 8-luminaire row is reported for the scaling curve but
// not gated (4-pixel strips decode at the edge of the margin budget).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "colorbars/scene/simulator.hpp"

using namespace colorbars;

namespace {

/// ideal_profile widened to 64 columns so up to 8 strips fit with dark
/// gaps between them.
camera::SensorProfile wide_profile() {
  camera::SensorProfile profile = camera::ideal_profile();
  profile.columns = 64;
  return profile;
}

/// N full-height strips, evenly pitched with equal dark gaps, aligned to
/// the tracker's 4-column grid.
scene::SceneSpec layout(int luminaires, const camera::SensorProfile& profile) {
  scene::SceneSpec spec;
  const int pitch = profile.columns / luminaires;
  const int width = std::max(4, (pitch / 2) / 4 * 4);
  for (int i = 0; i < luminaires; ++i) {
    scene::LuminairePlacement placement;
    placement.region.top = 0;
    placement.region.height = profile.rows;
    placement.region.left = i * pitch + (pitch - width) / 2 / 4 * 4;
    placement.region.width = width;
    spec.luminaires.push_back(placement);
  }
  return spec;
}

struct ScalePoint {
  int luminaires = 0;
  scene::SceneRunResult result;
  int lanes_matched = 0;
};

ScalePoint run_scale(int luminaires, double duration_s) {
  scene::SceneConfig config;
  config.link.order = csk::CskOrder::kCsk8;
  config.link.symbol_rate_hz = 2000.0;
  config.link.profile = wide_profile();
  config.link.seed = 0x5ce2be2c;
  config.scene = layout(luminaires, config.link.profile);

  scene::SceneSimulator simulator(config);
  ScalePoint point;
  point.luminaires = luminaires;
  point.result = simulator.run_goodput(duration_s);
  for (const scene::LuminaireOutcome& outcome : point.result.luminaires) {
    if (outcome.lane_id >= 0) ++point.lanes_matched;
  }
  return point;
}

}  // namespace

int main() {
  bench::print_header("Extension: multi-luminaire scene decode (spatial multiplexing)");
  bench::JsonReport report("extension_multiled");

  const double duration_s = 2.0;
  std::printf("%4s %6s %6s %10s %12s %14s %14s\n", "LEDs", "lanes", "frames",
              "sent", "recovered", "aggregate", "per-LED mean");
  std::vector<ScalePoint> points;
  for (const int luminaires : {1, 2, 4, 8}) {
    points.push_back(run_scale(luminaires, duration_s));
    const ScalePoint& point = points.back();
    const scene::SceneRunResult& r = point.result;
    std::printf("%4d %3d/%-2d %6d %9zuB %11zuB %11.2fkbps %11.2fkbps\n",
                point.luminaires, point.lanes_matched, point.luminaires, r.frames,
                r.sent_bytes, r.recovered_bytes, r.goodput_bps() / 1000.0,
                r.goodput_bps() / 1000.0 / point.luminaires);

    report.add_row()
        .label("luminaires", std::to_string(point.luminaires))
        .metric("lanes_opened", r.lanes_opened)
        .metric("lanes_matched", point.lanes_matched)
        .metric("frames", r.frames)
        .metric("sent_bytes", static_cast<double>(r.sent_bytes))
        .metric("recovered_bytes", static_cast<double>(r.recovered_bytes))
        .metric("aggregate_goodput_bps", r.goodput_bps())
        .metric("air_time_s", r.air_time_s);
  }

  // Acceptance: all luminaires tracked through N=4, and aggregate
  // goodput strictly monotonic over 1 -> 2 -> 4.
  bool all_tracked = true;
  for (const ScalePoint& point : points) {
    if (point.luminaires <= 4 && point.lanes_matched != point.luminaires) {
      all_tracked = false;
      std::printf("FAIL: %d of %d luminaires acquired a lane at N=%d\n",
                  point.lanes_matched, point.luminaires, point.luminaires);
    }
  }
  bool monotonic = true;
  for (std::size_t i = 1; i < points.size() && points[i].luminaires <= 4; ++i) {
    if (points[i].result.goodput_bps() <= points[i - 1].result.goodput_bps()) {
      monotonic = false;
      std::printf("FAIL: goodput not monotonic at N=%d (%.2f <= %.2f kbps)\n",
                  points[i].luminaires, points[i].result.goodput_bps() / 1000.0,
                  points[i - 1].result.goodput_bps() / 1000.0);
    }
  }

  const bool pass = all_tracked && monotonic;
  std::printf("\nacceptance: %s\n", pass ? "PASS" : "FAIL");
  report.add_row()
      .label("luminaires", "acceptance")
      .metric("all_tracked", all_tracked ? 1 : 0)
      .metric("monotonic_1_2_4", monotonic ? 1 : 0)
      .metric("pass", pass ? 1 : 0);
  report.write();
  return pass ? 0 : 1;
}
