// Extension bench: closed-loop link adaptation (colorbars::adapt) vs
// every fixed rung of the rate ladder over a range+occlusion trajectory.
// The paper picks one (order, rate) per deployment and Fig. 11 shows why
// that is fragile: each rung's goodput collapses past its own ISI cliff.
// This bench walks the receiver out from the luminaire — with a hand
// passing through the beam on the far leg — and measures what a rate
// controller recovers versus any single rung frozen for the whole walk.
//
// Acceptance: the adaptive link's total goodput is at least the best
// fixed rung's, and on at least one reported phase it is strictly better
// than EVERY fixed rung (no single rung is right for a phase that spans
// a range transition).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "colorbars/adapt/simulator.hpp"
#include "colorbars/svc/service.hpp"

using namespace colorbars;

namespace {

/// The measured rung cliffs against an 8 cm reference panel sit at
/// ~13 cm (4 kHz dies), ~16 cm (2 kHz dies) and ~20+ cm (everything
/// dies) — see walkaway_trajectory(). The bench walk holds each leg a
/// few control intervals and adds occlusion bursts on the far leg.
adapt::Trajectory bench_trajectory() {
  adapt::Trajectory trajectory;
  auto leg = [&](const char* name, double duration_s, double distance_m,
                 double occlusion_rate_hz) {
    adapt::TrajectorySegment segment;
    segment.name = name;
    segment.duration_s = duration_s;
    segment.channel.distance.distance_m = distance_m;
    segment.channel.distance.reference_distance_m = 0.08;
    segment.channel.occlusion.rate_hz = occlusion_rate_hz;
    segment.channel.occlusion.mean_duration_s = 0.05;
    trajectory.segments.push_back(std::move(segment));
  };
  leg("5cm", 2.8, 0.05, 0.0);
  leg("13cm", 2.1, 0.13, 0.0);
  leg("16cm+occlusion", 2.1, 0.16, 0.5);
  leg("1m", 1.4, 1.00, 0.0);
  return trajectory;
}

/// Reported phases: groups of trajectory legs. The walk-out phase spans
/// the 5cm -> 13cm transition on purpose — a phase with an internal
/// range step is exactly where no frozen rung can be right throughout.
struct Phase {
  const char* name;
  std::vector<int> legs;
};

const std::vector<Phase>& phases() {
  static const std::vector<Phase> kPhases{
      {"walk-out (5->13cm)", {0, 1}},
      {"arm's length (16cm, occluded)", {2}},
      {"out of range (1m)", {3}},
  };
  return kPhases;
}

struct PolicyOutcome {
  std::string name;
  adapt::AdaptiveRunResult result;
  std::vector<long long> phase_bytes;
  std::vector<double> phase_time_s;
};

adapt::AdaptiveLinkConfig policy_config(bool adaptive, int initial_rung) {
  adapt::AdaptiveLinkConfig config;
  config.adaptation_enabled = adaptive;
  config.initial_rung = initial_rung;
  config.feedback.delay_intervals = 1;
  return config;
}

PolicyOutcome policy_outcome(const std::string& name,
                             adapt::AdaptiveRunResult result) {
  PolicyOutcome outcome;
  outcome.name = name;
  outcome.result = std::move(result);
  outcome.phase_bytes.assign(phases().size(), 0);
  outcome.phase_time_s.assign(phases().size(), 0.0);
  for (const adapt::IntervalRecord& record : outcome.result.intervals) {
    for (std::size_t p = 0; p < phases().size(); ++p) {
      for (const int leg : phases()[p].legs) {
        if (record.segment == leg) {
          outcome.phase_bytes[p] += record.recovered_bytes;
          outcome.phase_time_s[p] += record.air_time_s;
        }
      }
    }
  }
  return outcome;
}

double phase_goodput(const PolicyOutcome& outcome, std::size_t p) {
  return outcome.phase_time_s[p] > 0.0
             ? 8.0 * static_cast<double>(outcome.phase_bytes[p]) /
                   outcome.phase_time_s[p]
             : 0.0;
}

}  // namespace

int main() {
  svc::maybe_run_worker();  // this binary is its own grid worker

  bench::print_header(
      "Extension: adaptive rate control vs fixed rungs (range+occlusion walk)");
  bench::JsonReport report("extension_adaptive");

  const adapt::Trajectory trajectory = bench_trajectory();
  const adapt::AdaptiveLinkConfig defaults;
  std::printf("trajectory: ");
  for (const adapt::TrajectorySegment& segment : trajectory.segments) {
    std::printf("%s (%.1fs)  ", segment.name.c_str(), segment.duration_s);
  }
  std::printf("\n\n");

  // One job per policy: the adaptive walk plus every frozen rung. With
  // COLORBARS_GRID_WORKERS set the batch runs across worker processes
  // (byte-identical to the in-process runs); otherwise each simulator
  // runs here in order.
  std::vector<std::string> names;
  std::vector<svc::AdaptiveJob> jobs;
  names.push_back("adaptive");
  jobs.push_back({policy_config(true, -1), trajectory});
  for (std::size_t rung = 0; rung < defaults.ladder.size(); ++rung) {
    names.push_back("fixed " + adapt::rung_name(defaults.ladder[rung]));
    jobs.push_back({policy_config(false, static_cast<int>(rung)), trajectory});
  }

  const std::optional<int> grid_workers = svc::grid_workers_from_env();
  svc::SvcStats grid_stats;
  std::vector<adapt::AdaptiveRunResult> results;
  if (grid_workers) {
    svc::ServiceConfig service;
    service.workers = *grid_workers;
    results = svc::run_adaptive_batch(jobs, service, &grid_stats);
  } else {
    for (const svc::AdaptiveJob& job : jobs) {
      adapt::AdaptiveLinkSimulator simulator(job.config, job.trajectory);
      results.push_back(simulator.run());
    }
  }

  std::vector<PolicyOutcome> outcomes;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    outcomes.push_back(policy_outcome(names[i], std::move(results[i])));
  }

  std::printf("%-20s %10s %10s %8s", "policy", "bytes", "goodput", "shifts");
  for (const Phase& phase : phases()) std::printf("  %28s", phase.name);
  std::printf("\n");
  for (const PolicyOutcome& outcome : outcomes) {
    const adapt::AdaptiveRunResult& r = outcome.result;
    std::printf("%-20s %9lldB %7.2fkbps %4d/%-3d", outcome.name.c_str(),
                r.recovered_bytes, r.goodput_bps() / 1000.0, r.downshifts,
                r.upshifts);
    for (std::size_t p = 0; p < phases().size(); ++p) {
      std::printf("  %18lldB %6.2fkbps", outcome.phase_bytes[p],
                  phase_goodput(outcome, p) / 1000.0);
    }
    std::printf("\n");

    auto& row = report.add_row();
    row.label("policy", outcome.name)
        .metric("total_bytes", static_cast<double>(r.recovered_bytes))
        .metric("total_goodput_bps", r.goodput_bps())
        .metric("air_time_s", r.total_time_s)
        .metric("packet_success",
                [&] {
                  long long sent = 0, ok = 0;
                  for (const adapt::IntervalRecord& record : r.intervals) {
                    sent += record.packets_sent;
                    ok += record.packets_ok;
                  }
                  return sent > 0 ? static_cast<double>(ok) /
                                        static_cast<double>(sent)
                                  : 0.0;
                }())
        .metric("downshifts", r.downshifts)
        .metric("upshifts", r.upshifts)
        .metric("epochs", r.epochs)
        .metric("commands_lost", static_cast<double>(r.commands_lost));
    for (std::size_t p = 0; p < phases().size(); ++p) {
      row.metric("phase" + std::to_string(p) + "_bytes",
                 static_cast<double>(outcome.phase_bytes[p]))
          .metric("phase" + std::to_string(p) + "_goodput_bps",
                  phase_goodput(outcome, p));
    }
  }

  // Acceptance check.
  const PolicyOutcome& adaptive = outcomes.front();
  long long best_fixed_bytes = 0;
  std::string best_fixed_name;
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    if (outcomes[i].result.recovered_bytes > best_fixed_bytes) {
      best_fixed_bytes = outcomes[i].result.recovered_bytes;
      best_fixed_name = outcomes[i].name;
    }
  }
  int winning_phase = -1;
  for (std::size_t p = 0; p < phases().size() && winning_phase < 0; ++p) {
    bool beats_all = true;
    for (std::size_t i = 1; i < outcomes.size(); ++i) {
      if (adaptive.phase_bytes[p] <= outcomes[i].phase_bytes[p]) {
        beats_all = false;
        break;
      }
    }
    if (beats_all) winning_phase = static_cast<int>(p);
  }
  const bool total_ok = adaptive.result.recovered_bytes >= best_fixed_bytes;
  std::printf("\nadaptive total: %lldB vs best fixed (%s): %lldB  -> %s\n",
              adaptive.result.recovered_bytes, best_fixed_name.c_str(),
              best_fixed_bytes, total_ok ? "ok" : "WORSE");
  if (winning_phase >= 0) {
    std::printf("adaptive strictly beats every fixed rung on phase \"%s\"\n",
                phases()[static_cast<std::size_t>(winning_phase)].name);
  } else {
    std::printf("adaptive beats every fixed rung on NO phase\n");
  }
  const bool pass = total_ok && winning_phase >= 0;
  std::printf("acceptance: %s\n", pass ? "PASS" : "FAIL");

  report.add_row()
      .label("policy", "acceptance")
      .metric("total_ok", total_ok ? 1 : 0)
      .metric("winning_phase", winning_phase)
      .metric("pass", pass ? 1 : 0);
  if (grid_workers) {
    report.add_row()
        .label("policy", "scheduler")
        .metric("grid_workers", grid_stats.workers)
        .metric("jobs", static_cast<double>(grid_stats.jobs_total))
        .metric("retries", static_cast<double>(grid_stats.retries))
        .metric("respawns", static_cast<double>(grid_stats.respawns))
        .metric("wall_time_s", grid_stats.wall_time_s);
  }
  report.write();
  return pass ? 0 : 1;
}
