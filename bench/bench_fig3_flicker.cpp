// Reproduces Fig. 3(b): the minimum percentage of white illumination
// symbols needed to avoid perceptible color flicker, as a function of
// symbol frequency (500-5000 Hz) — the software stand-in for the paper's
// 10-volunteer study. Also reproduces Fig. 3(c): the width of the color
// bands on the sensor at 1000 vs 3000 symbols/sec.
//
// Paper shape: the required white percentage falls as the symbol
// frequency rises, because more symbols average inside each critical
// duration of the eye.

#include "bench_util.hpp"
#include "colorbars/camera/profile.hpp"
#include "colorbars/flicker/requirement.hpp"

using namespace colorbars;

int main() {
  bench::print_header("Fig. 3(b): % white light symbols needed vs symbol frequency");

  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  const led::TriLed led;
  flicker::RequirementConfig config;
  config.stream_duration_s = 1.5;
  config.fraction_step = 0.05;

  const std::vector<double> frequencies{500, 1000, 2000, 3000, 4000, 5000};
  std::printf("%-12s %-18s %-14s\n", "freq (Hz)", "min white symbols", "residual maxΔE");
  bench::JsonReport report("fig3_flicker");
  const auto curve =
      flicker::white_requirement_curve(constellation, led, frequencies, config);
  for (const auto& point : curve) {
    std::printf("%-12.0f %-18.0f%% %-14.2f\n", point.symbol_rate_hz,
                100.0 * point.min_white_fraction, point.max_delta_e_at_min);
    report.add_row()
        .metric("symbol_rate_hz", point.symbol_rate_hz)
        .metric("min_white_fraction", point.min_white_fraction)
        .metric("max_delta_e_at_min", point.max_delta_e_at_min);
  }

  bench::print_header("Fig. 3(c): color band width vs symbol rate (scanlines)");
  std::printf("%-10s %-16s %-16s\n", "device", "1000 sym/s", "3000 sym/s");
  for (const auto& profile : {camera::nexus5_profile(), camera::iphone5s_profile()}) {
    std::printf("%-10s %-16.1f %-16.1f\n", profile.name.c_str(),
                profile.band_rows(1000), profile.band_rows(3000));
    report.add_row()
        .label("device", profile.name)
        .metric("band_rows_1000", profile.band_rows(1000))
        .metric("band_rows_3000", profile.band_rows(3000));
  }
  std::printf(
      "\nExpected shape: white requirement decreases monotonically with frequency\n"
      "(Fig. 3b); band width scales as 1/rate, 3x narrower at 3 kHz (Fig. 3c).\n");
  return 0;
}
