// Micro-benchmarks (google-benchmark) for the building blocks whose
// speed governs real-time decoding on a phone (paper §8 uses a threaded
// pipeline): color conversion, Bayer demosaic, Reed-Solomon, band
// extraction and the end-to-end per-frame receiver cost.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hpp"
#include "colorbars/camera/bayer.hpp"
#include "colorbars/camera/camera.hpp"
#include "colorbars/color/lab.hpp"
#include "colorbars/color/lut.hpp"
#include "colorbars/color/srgb.hpp"
#include "colorbars/csk/mapper.hpp"
#include "colorbars/led/emission.hpp"
#include "colorbars/led/tri_led.hpp"
#include "colorbars/pipeline/buffer_pool.hpp"
#include "colorbars/protocol/symbols.hpp"
#include "colorbars/rs/reed_solomon.hpp"
#include "colorbars/rx/band_extractor.hpp"
#include "colorbars/util/rng.hpp"

using namespace colorbars;

namespace {

void BM_SrgbToLab(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::vector<util::Vec3> pixels(4096);
  for (auto& pixel : pixels) pixel = {rng.uniform(), rng.uniform(), rng.uniform()};
  for (auto _ : state) {
    for (const auto& pixel : pixels) {
      benchmark::DoNotOptimize(
          color::xyz_to_lab(color::linear_srgb_to_xyz(color::srgb_decode(pixel))));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(pixels.size()));
}
BENCHMARK(BM_SrgbToLab);

void BM_Rgb8ToLabFast(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::vector<color::Rgb8> pixels(4096);
  for (auto& pixel : pixels) {
    pixel = {static_cast<std::uint8_t>(rng.below(256)),
             static_cast<std::uint8_t>(rng.below(256)),
             static_cast<std::uint8_t>(rng.below(256))};
  }
  for (auto _ : state) {
    for (const auto& pixel : pixels) {
      benchmark::DoNotOptimize(color::rgb8_to_lab_fast(pixel));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(pixels.size()));
}
BENCHMARK(BM_Rgb8ToLabFast);

void BM_TraceAverage(benchmark::State& state) {
  // Row-exposure-sized windows against traces of growing length: the
  // prefix-sum integral keeps this O(log segments) per window instead of
  // O(segments in window).
  const int segments = static_cast<int>(state.range(0));
  util::Xoshiro256 rng(10);
  led::EmissionTrace trace;
  for (int i = 0; i < segments; ++i) {
    trace.append(rng.uniform(1e-4, 6e-4), {rng.uniform(), rng.uniform(), rng.uniform()});
  }
  std::vector<std::pair<double, double>> windows;
  for (int i = 0; i < 1024; ++i) {
    const double t0 = rng.uniform(0.0, trace.duration());
    windows.emplace_back(t0, t0 + 1e-3);
  }
  for (auto _ : state) {
    for (const auto& [lo, hi] : windows) {
      benchmark::DoNotOptimize(trace.average(lo, hi));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(windows.size()));
}
BENCHMARK(BM_TraceAverage)->Arg(1000)->Arg(20000);

void BM_BayerDemosaic(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int columns = 64;
  util::Xoshiro256 rng(2);
  std::vector<double> raw(static_cast<std::size_t>(rows) * columns);
  for (auto& value : raw) value = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(camera::demosaic(raw, rows, columns));
  }
  state.SetItemsProcessed(state.iterations() * rows * columns);
}
BENCHMARK(BM_BayerDemosaic)->Arg(1080)->Arg(2448);

void BM_RsEncode(benchmark::State& state) {
  const rs::ReedSolomon code(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(0)) / 2);
  util::Xoshiro256 rng(3);
  std::vector<std::uint8_t> message(static_cast<std::size_t>(code.k()));
  for (auto& byte : message) byte = static_cast<std::uint8_t>(rng.below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(message));
  }
  state.SetBytesProcessed(state.iterations() * code.k());
}
BENCHMARK(BM_RsEncode)->Arg(32)->Arg(64)->Arg(255);

void BM_RsDecodeWithErasures(benchmark::State& state) {
  const rs::ReedSolomon code(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(0)) / 2);
  util::Xoshiro256 rng(4);
  std::vector<std::uint8_t> message(static_cast<std::size_t>(code.k()));
  for (auto& byte : message) byte = static_cast<std::uint8_t>(rng.below(256));
  auto codeword = code.encode(message);
  std::vector<int> erasures;
  for (int i = 0; i < code.parity_count() / 2; ++i) {
    erasures.push_back(i + 3);
    codeword[static_cast<std::size_t>(i) + 3] = 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(codeword, erasures));
  }
  state.SetBytesProcessed(state.iterations() * code.n());
}
BENCHMARK(BM_RsDecodeWithErasures)->Arg(32)->Arg(64)->Arg(255);

void BM_SymbolMapping(benchmark::State& state) {
  const csk::Constellation constellation(csk::CskOrder::kCsk16);
  const csk::SymbolMapper mapper(constellation);
  util::Xoshiro256 rng(5);
  std::vector<std::uint8_t> payload(256);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map_bytes(payload));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<long long>(payload.size()));
}
BENCHMARK(BM_SymbolMapping);

camera::Frame captured_frame() {
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  const led::TriLed led;
  util::Xoshiro256 rng(6);
  std::vector<protocol::ChannelSymbol> symbols;
  for (int i = 0; i < 200; ++i) {
    symbols.push_back(protocol::ChannelSymbol::data(static_cast<int>(rng.below(8))));
  }
  const led::EmissionTrace trace =
      led.emit(protocol::drives_of(symbols, constellation), 2000.0);
  camera::RollingShutterCamera camera(camera::nexus5_profile(), {}, 7);
  return camera.capture_frame(trace, 0.01);
}

void BM_FrameReduceToScanlines(benchmark::State& state) {
  const camera::Frame frame = captured_frame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rx::reduce_to_scanlines(frame));
  }
  state.SetItemsProcessed(state.iterations() * frame.rows * frame.columns);
}
BENCHMARK(BM_FrameReduceToScanlines);

void BM_FrameExtractSlots(benchmark::State& state) {
  const camera::Frame frame = captured_frame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rx::extract_slots(frame, 2000.0));
  }
  // Frames arrive at 30 fps; this must stay well under 33 ms for the
  // paper's real-time Android pipeline to keep up.
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameExtractSlots);

void BM_CameraCaptureFrame(benchmark::State& state) {
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  const led::TriLed led;
  util::Xoshiro256 rng(8);
  std::vector<protocol::ChannelSymbol> symbols;
  for (int i = 0; i < 200; ++i) {
    symbols.push_back(protocol::ChannelSymbol::data(static_cast<int>(rng.below(8))));
  }
  const led::EmissionTrace trace =
      led.emit(protocol::drives_of(symbols, constellation), 2000.0);
  camera::RollingShutterCamera camera(camera::nexus5_profile(), {}, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(camera.capture_frame(trace, 0.01));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CameraCaptureFrame);

// Per-frame render cost through the streaming pipeline's pooled path
// (Arg(1): buffers recycled through a BufferPool) versus fresh
// allocations every frame (Arg(0)). The delta is what the pipeline's
// buffer reuse saves per frame in steady state.
void BM_PipelineFrame(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  const led::TriLed led;
  util::Xoshiro256 rng(11);
  std::vector<protocol::ChannelSymbol> symbols;
  for (int i = 0; i < 200; ++i) {
    symbols.push_back(protocol::ChannelSymbol::data(static_cast<int>(rng.below(8))));
  }
  const led::EmissionTrace trace =
      led.emit(protocol::drives_of(symbols, constellation), 2000.0);
  camera::RollingShutterCamera camera(camera::nexus5_profile(), {}, 12);
  const camera::CapturePlan plan = camera.plan_capture(trace);
  pipeline::BufferPool pool;
  int index = 0;
  for (auto _ : state) {
    camera::Frame frame = pooled ? pool.acquire_frame() : camera::Frame{};
    camera::RenderScratch scratch =
        pooled ? pool.acquire_scratch() : camera::RenderScratch{};
    camera.render_planned_frame(trace, plan, index % plan.frame_count(), frame,
                                scratch);
    benchmark::DoNotOptimize(frame.pixels.data());
    if (pooled) {
      pool.release_frame(std::move(frame));
      pool.release_scratch(std::move(scratch));
    }
    ++index;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(pooled ? "pooled" : "fresh");
}
BENCHMARK(BM_PipelineFrame)->Arg(0)->Arg(1);

}  // namespace

// Custom main: mirror the console run into BENCH_micro.json so the
// per-stage timings land in a machine-readable artifact alongside the
// human-readable table. An explicit --benchmark_out flag wins over the
// default; all other standard --benchmark_* flags pass through.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag =
      "--benchmark_out=" + colorbars::bench::bench_json_path("micro");
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
