// Micro-benchmarks (google-benchmark) for the building blocks whose
// speed governs real-time decoding on a phone (paper §8 uses a threaded
// pipeline): color conversion, Bayer demosaic, Reed-Solomon, band
// extraction and the end-to-end per-frame receiver cost.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "colorbars/camera/bayer.hpp"
#include "colorbars/camera/camera.hpp"
#include "colorbars/color/lab.hpp"
#include "colorbars/color/lut.hpp"
#include "colorbars/color/srgb.hpp"
#include "colorbars/csk/mapper.hpp"
#include "colorbars/led/emission.hpp"
#include "colorbars/led/tri_led.hpp"
#include "colorbars/pipeline/buffer_pool.hpp"
#include "colorbars/protocol/symbols.hpp"
#include "colorbars/rs/reed_solomon.hpp"
#include "colorbars/rx/band_extractor.hpp"
#include "colorbars/simd/simd.hpp"
#include "colorbars/util/rng.hpp"

using namespace colorbars;

namespace {

void BM_SrgbToLab(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::vector<util::Vec3> pixels(4096);
  for (auto& pixel : pixels) pixel = {rng.uniform(), rng.uniform(), rng.uniform()};
  for (auto _ : state) {
    for (const auto& pixel : pixels) {
      benchmark::DoNotOptimize(
          color::xyz_to_lab(color::linear_srgb_to_xyz(color::srgb_decode(pixel))));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(pixels.size()));
}
BENCHMARK(BM_SrgbToLab);

void BM_Rgb8ToLabFast(benchmark::State& state) {
  util::Xoshiro256 rng(1);
  std::vector<color::Rgb8> pixels(4096);
  for (auto& pixel : pixels) {
    pixel = {static_cast<std::uint8_t>(rng.below(256)),
             static_cast<std::uint8_t>(rng.below(256)),
             static_cast<std::uint8_t>(rng.below(256))};
  }
  for (auto _ : state) {
    for (const auto& pixel : pixels) {
      benchmark::DoNotOptimize(color::rgb8_to_lab_fast(pixel));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(pixels.size()));
}
BENCHMARK(BM_Rgb8ToLabFast);

void BM_TraceAverage(benchmark::State& state) {
  // Row-exposure-sized windows against traces of growing length: the
  // prefix-sum integral keeps this O(log segments) per window instead of
  // O(segments in window).
  const int segments = static_cast<int>(state.range(0));
  util::Xoshiro256 rng(10);
  led::EmissionTrace trace;
  for (int i = 0; i < segments; ++i) {
    trace.append(rng.uniform(1e-4, 6e-4), {rng.uniform(), rng.uniform(), rng.uniform()});
  }
  std::vector<std::pair<double, double>> windows;
  for (int i = 0; i < 1024; ++i) {
    const double t0 = rng.uniform(0.0, trace.duration());
    windows.emplace_back(t0, t0 + 1e-3);
  }
  for (auto _ : state) {
    for (const auto& [lo, hi] : windows) {
      benchmark::DoNotOptimize(trace.average(lo, hi));
    }
  }
  state.SetItemsProcessed(state.iterations() * static_cast<long long>(windows.size()));
}
BENCHMARK(BM_TraceAverage)->Arg(1000)->Arg(20000);

void BM_BayerDemosaic(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int columns = 64;
  util::Xoshiro256 rng(2);
  std::vector<double> raw(static_cast<std::size_t>(rows) * columns);
  for (auto& value : raw) value = rng.uniform();
  for (auto _ : state) {
    benchmark::DoNotOptimize(camera::demosaic(raw, rows, columns));
  }
  state.SetItemsProcessed(state.iterations() * rows * columns);
}
BENCHMARK(BM_BayerDemosaic)->Arg(1080)->Arg(2448);

void BM_RsEncode(benchmark::State& state) {
  const rs::ReedSolomon code(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(0)) / 2);
  util::Xoshiro256 rng(3);
  std::vector<std::uint8_t> message(static_cast<std::size_t>(code.k()));
  for (auto& byte : message) byte = static_cast<std::uint8_t>(rng.below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(message));
  }
  state.SetBytesProcessed(state.iterations() * code.k());
}
BENCHMARK(BM_RsEncode)->Arg(32)->Arg(64)->Arg(255);

void BM_RsDecodeWithErasures(benchmark::State& state) {
  const rs::ReedSolomon code(static_cast<int>(state.range(0)),
                             static_cast<int>(state.range(0)) / 2);
  util::Xoshiro256 rng(4);
  std::vector<std::uint8_t> message(static_cast<std::size_t>(code.k()));
  for (auto& byte : message) byte = static_cast<std::uint8_t>(rng.below(256));
  auto codeword = code.encode(message);
  std::vector<int> erasures;
  for (int i = 0; i < code.parity_count() / 2; ++i) {
    erasures.push_back(i + 3);
    codeword[static_cast<std::size_t>(i) + 3] = 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(codeword, erasures));
  }
  state.SetBytesProcessed(state.iterations() * code.n());
}
BENCHMARK(BM_RsDecodeWithErasures)->Arg(32)->Arg(64)->Arg(255);

void BM_SymbolMapping(benchmark::State& state) {
  const csk::Constellation constellation(csk::CskOrder::kCsk16);
  const csk::SymbolMapper mapper(constellation);
  util::Xoshiro256 rng(5);
  std::vector<std::uint8_t> payload(256);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.below(256));
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.map_bytes(payload));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<long long>(payload.size()));
}
BENCHMARK(BM_SymbolMapping);

camera::Frame captured_frame() {
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  const led::TriLed led;
  util::Xoshiro256 rng(6);
  std::vector<protocol::ChannelSymbol> symbols;
  for (int i = 0; i < 200; ++i) {
    symbols.push_back(protocol::ChannelSymbol::data(static_cast<int>(rng.below(8))));
  }
  const led::EmissionTrace trace =
      led.emit(protocol::drives_of(symbols, constellation), 2000.0);
  camera::RollingShutterCamera camera(camera::nexus5_profile(), {}, 7);
  return camera.capture_frame(trace, 0.01);
}

void BM_FrameReduceToScanlines(benchmark::State& state) {
  const camera::Frame frame = captured_frame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rx::reduce_to_scanlines(frame));
  }
  state.SetItemsProcessed(state.iterations() * frame.rows * frame.columns);
}
BENCHMARK(BM_FrameReduceToScanlines);

void BM_FrameExtractSlots(benchmark::State& state) {
  const camera::Frame frame = captured_frame();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rx::extract_slots(frame, 2000.0));
  }
  // Frames arrive at 30 fps; this must stay well under 33 ms for the
  // paper's real-time Android pipeline to keep up.
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameExtractSlots);

void BM_CameraCaptureFrame(benchmark::State& state) {
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  const led::TriLed led;
  util::Xoshiro256 rng(8);
  std::vector<protocol::ChannelSymbol> symbols;
  for (int i = 0; i < 200; ++i) {
    symbols.push_back(protocol::ChannelSymbol::data(static_cast<int>(rng.below(8))));
  }
  const led::EmissionTrace trace =
      led.emit(protocol::drives_of(symbols, constellation), 2000.0);
  camera::RollingShutterCamera camera(camera::nexus5_profile(), {}, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(camera.capture_frame(trace, 0.01));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CameraCaptureFrame);

// Per-frame render cost through the streaming pipeline's pooled path
// (Arg(1): buffers recycled through a BufferPool) versus fresh
// allocations every frame (Arg(0)). The delta is what the pipeline's
// buffer reuse saves per frame in steady state.
void BM_PipelineFrame(benchmark::State& state) {
  const bool pooled = state.range(0) != 0;
  const csk::Constellation constellation(csk::CskOrder::kCsk8);
  const led::TriLed led;
  util::Xoshiro256 rng(11);
  std::vector<protocol::ChannelSymbol> symbols;
  for (int i = 0; i < 200; ++i) {
    symbols.push_back(protocol::ChannelSymbol::data(static_cast<int>(rng.below(8))));
  }
  const led::EmissionTrace trace =
      led.emit(protocol::drives_of(symbols, constellation), 2000.0);
  camera::RollingShutterCamera camera(camera::nexus5_profile(), {}, 12);
  const camera::CapturePlan plan = camera.plan_capture(trace);
  pipeline::BufferPool pool;
  int index = 0;
  for (auto _ : state) {
    camera::Frame frame = pooled ? pool.acquire_frame() : camera::Frame{};
    camera::RenderScratch scratch =
        pooled ? pool.acquire_scratch() : camera::RenderScratch{};
    camera.render_planned_frame(trace, plan, index % plan.frame_count(), frame,
                                scratch);
    benchmark::DoNotOptimize(frame.pixels.data());
    if (pooled) {
      pool.release_frame(std::move(frame));
      pool.release_scratch(std::move(scratch));
    }
    ++index;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel(pooled ? "pooled" : "fresh");
}
BENCHMARK(BM_PipelineFrame)->Arg(0)->Arg(1);

// The ΔE fan-out of the nearest-reference symbol decision: one
// observation against a full classifier batch of references.
void BM_SimdDeltaE(benchmark::State& state) {
  util::Xoshiro256 rng(13);
  constexpr int kRefs = 64;
  std::vector<double> ref_a(kRefs), ref_b(kRefs), dist(kRefs);
  for (int i = 0; i < kRefs; ++i) {
    ref_a[static_cast<std::size_t>(i)] = rng.uniform(-90.0, 90.0);
    ref_b[static_cast<std::size_t>(i)] = rng.uniform(-90.0, 90.0);
  }
  std::vector<std::pair<double, double>> observations(1024);
  for (auto& [a, b] : observations) {
    a = rng.uniform(-90.0, 90.0);
    b = rng.uniform(-90.0, 90.0);
  }
  for (auto _ : state) {
    for (const auto& [a, b] : observations) {
      simd::delta_e_ab_many(ref_a.data(), ref_b.data(), kRefs, a, b, dist.data());
      benchmark::DoNotOptimize(dist.data());
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(observations.size()) * kRefs);
}
BENCHMARK(BM_SimdDeltaE);

// --compare mode (or COLORBARS_BENCH_COMPARE=1): pin each supported
// simd backend in turn and rerun the four dispatched kernels in this
// same process, so scalar-vs-vector numbers land side by side in one
// BENCH_micro.json under names like "BM_FrameReduceToScanlines/avx2".
template <typename Body>
void register_compare(const char* name, simd::Backend backend, Body body) {
  benchmark::RegisterBenchmark(
      (std::string(name) + "/" + simd::backend_name(backend)).c_str(),
      [backend, body](benchmark::State& state) {
        const simd::Backend saved = simd::active_backend();
        simd::set_backend(backend);
        body(state);
        simd::set_backend(saved);
      });
}

void register_compare_benchmarks() {
  for (const simd::Backend backend :
       {simd::Backend::kScalar, simd::Backend::kSse42, simd::Backend::kAvx2,
        simd::Backend::kNeon}) {
    if (!simd::backend_supported(backend)) continue;

    register_compare("BM_FrameReduceToScanlines", backend, [](benchmark::State& state) {
      const camera::Frame frame = captured_frame();
      for (auto _ : state) {
        benchmark::DoNotOptimize(rx::reduce_to_scanlines(frame));
      }
      state.SetItemsProcessed(state.iterations() * frame.rows * frame.columns);
    });

    register_compare("BM_BayerDemosaic", backend, [](benchmark::State& state) {
      // demosaic_into with a reused output, like the pipeline's pooled
      // RenderScratch path — fresh-allocation cost would bury the kernel.
      const int rows = 2448;
      const int columns = 64;
      util::Xoshiro256 rng(2);
      std::vector<double> raw(static_cast<std::size_t>(rows) * columns);
      for (auto& value : raw) value = rng.uniform();
      camera::FloatImage rgb;
      for (auto _ : state) {
        camera::demosaic_into(raw, rows, columns, rgb);
        benchmark::DoNotOptimize(rgb);
      }
      state.SetItemsProcessed(state.iterations() * rows * columns);
    });

    register_compare("BM_RowLabRgbSums", backend, [](benchmark::State& state) {
      util::Xoshiro256 rng(1);
      std::vector<color::Rgb8> pixels(4096);
      for (auto& pixel : pixels) {
        pixel = {static_cast<std::uint8_t>(rng.below(256)),
                 static_cast<std::uint8_t>(rng.below(256)),
                 static_cast<std::uint8_t>(rng.below(256))};
      }
      for (auto _ : state) {
        simd::RowSums sums;
        simd::row_lab_rgb_sums(pixels.data(), static_cast<int>(pixels.size()), sums);
        benchmark::DoNotOptimize(sums);
      }
      state.SetItemsProcessed(state.iterations() * static_cast<long long>(pixels.size()));
    });

    register_compare("BM_VignetteSignalSpan", backend, [](benchmark::State& state) {
      util::Xoshiro256 rng(14);
      constexpr int kColumns = 2448;
      std::vector<double> col2(kColumns), out(kColumns);
      for (auto& value : col2) value = rng.uniform();
      for (auto _ : state) {
        simd::vignette_signal_span(col2.data(), 0, kColumns, 0.41, 0.4, 0.83, 0.27,
                                   out.data());
        benchmark::DoNotOptimize(out.data());
      }
      state.SetItemsProcessed(state.iterations() * kColumns);
    });

    register_compare("BM_SimdDeltaE", backend, BM_SimdDeltaE);
  }
}

}  // namespace

// Custom main: mirror the console run into BENCH_micro.json so the
// per-stage timings land in a machine-readable artifact alongside the
// human-readable table. An explicit --benchmark_out flag wins over the
// default; all other standard --benchmark_* flags pass through.
// --compare (or COLORBARS_BENCH_COMPARE=1) additionally registers
// per-backend variants of the dispatched kernels.
int main(int argc, char** argv) {
  std::vector<char*> args;
  bool compare = std::getenv("COLORBARS_BENCH_COMPARE") != nullptr;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--compare") == 0) {
      compare = true;
      continue;
    }
    args.push_back(argv[i]);
  }
  if (compare) register_compare_benchmarks();
  std::string out_flag =
      "--benchmark_out=" + colorbars::bench::bench_json_path("micro");
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0) has_out = true;
  }
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
